// End-to-end checks of the observability layer: a small system run must
// populate the global registry and tracer, and orchestration results must
// be bit-identical with metrics enabled or disabled, at any thread count.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace_span.h"
#include "compute/computing_manager.h"
#include "core/system.h"
#include "core/training.h"
#include "env/service_model.h"
#include "obs/event_log.h"
#include "obs/sla_watchdog.h"
#include "obs/telemetry_server.h"
#include "radio/radio_manager.h"
#include "rl/ddpg.h"
#include "transport/transport_manager.h"

namespace edgeslice::core {
namespace {

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    global_metrics().clear();
    global_tracer().clear();
    obs::global_event_log().clear();
    set_metrics_enabled(true);
  }
  void TearDown() override {
    set_metrics_enabled(true);
    global_metrics().clear();
    global_tracer().clear();
    obs::global_event_log().clear();
  }
};

struct Stack {
  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  std::vector<std::unique_ptr<RaPolicy>> policies;

  std::vector<env::RaEnvironment*> env_ptrs() {
    std::vector<env::RaEnvironment*> out;
    for (auto& e : environments) out.push_back(e.get());
    return out;
  }
  std::vector<RaPolicy*> policy_ptrs() {
    std::vector<RaPolicy*> out;
    for (auto& p : policies) out.push_back(p.get());
    return out;
  }
};

Stack make_stack(std::size_t ras) {
  const auto model =
      std::make_shared<env::DirectServiceModel>(env::prototype_capacity());
  env::RaEnvironmentConfig config;
  config.intervals_per_period = 4;
  Stack stack;
  for (std::size_t j = 0; j < ras; ++j) {
    stack.environments.push_back(std::make_unique<env::RaEnvironment>(
        config,
        std::vector<env::AppProfile>{env::slice1_profile(), env::slice2_profile()},
        model, env::make_queue_power_perf(), Rng(100 + j)));
    stack.policies.push_back(std::make_unique<TaroPolicy>());
  }
  return stack;
}

CoordinatorConfig coordinator_config(std::size_t ras) {
  CoordinatorConfig config;
  config.slices = 2;
  config.ras = ras;
  return config;
}

std::vector<double> run_periods(std::size_t periods, ThreadPool* pool) {
  Stack stack = make_stack(2);
  SystemConfig system_config;
  system_config.pool = pool;
  EdgeSliceSystem system(stack.env_ptrs(), stack.policy_ptrs(),
                         coordinator_config(2), system_config);
  std::vector<double> out;
  for (const auto& result : system.run(periods)) {
    out.push_back(result.system_performance);
  }
  return out;
}

TEST_F(ObservabilityTest, SystemRunPopulatesMetricsAndSpans) {
  Stack stack = make_stack(2);
  EdgeSliceSystem system(stack.env_ptrs(), stack.policy_ptrs(),
                         coordinator_config(2));
  system.run(3);

  auto& metrics = global_metrics();
  EXPECT_EQ(metrics.counter("system.periods").value(), 3u);
  EXPECT_EQ(metrics.counter("coordinator.updates").value(), 3u);
  EXPECT_EQ(metrics.counter("bus.rcm_sent").value(), 6u);  // 2 RAs x 3 periods
  EXPECT_EQ(metrics.counter("monitor.rows_recorded").value(), 24u);  // 2 x 3 x 4
  EXPECT_TRUE(metrics.gauge("system.crashed_ras").written());
  EXPECT_TRUE(metrics.gauge("bus.in_flight").written());
  // Fault-free delivery is same-period: one latency sample per report.
  EXPECT_EQ(metrics.histogram("bus.rcm_latency_periods").count(), 6u);
  EXPECT_DOUBLE_EQ(metrics.histogram("bus.rcm_latency_periods").max(), 0.0);

  auto& tracer = global_tracer();
  EXPECT_EQ(tracer.overall("system.period").count, 3u);
  EXPECT_EQ(tracer.overall("system.period/coordinate").count, 3u);
  EXPECT_EQ(
      tracer.overall("system.period/coordinate/coordinator.solve").count, 3u);
  EXPECT_EQ(tracer.overall("system.ra_intervals").count, 6u);
  // Per-period aggregation keyed by the running period index.
  EXPECT_EQ(tracer.for_period("system.period", 2).count, 1u);
}

TEST_F(ObservabilityTest, SubstrateManagersWriteUtilizationGauges) {
  // The three virtual-resource managers (prototype stack) report their
  // granted-capacity fractions on every reconfiguration.
  Rng rng(1);
  radio::RadioManagerConfig radio_config;  // 5 MHz -> 25 PRBs
  radio::RadioManager radio(radio_config, rng);
  radio.set_slice_share(0, 0.5);
  radio.set_slice_share(1, 0.25);
  // floor(0.5*25) + floor(0.25*25) = 12 + 6 of 25 PRBs.
  EXPECT_DOUBLE_EQ(global_metrics().gauge("radio.prb_utilization").value(), 18.0 / 25.0);

  transport::TransportManagerConfig transport_config;
  transport::TransportManager transport(transport_config);
  transport.set_slice_share(0, 0.6);
  transport.set_slice_share(1, 0.2);
  EXPECT_DOUBLE_EQ(global_metrics().gauge("transport.rate_utilization").value(), 0.8);
  EXPECT_EQ(global_metrics().counter("transport.reconfigurations").value(), 2u);

  compute::ComputingManagerConfig compute_config;
  compute::ComputingManager computing(compute_config);
  computing.set_slice_share(0, 0.5);
  const double expected =
      static_cast<double>(computing.slice_threads(0)) /
      static_cast<double>(compute_config.gpu.total_threads);
  EXPECT_DOUBLE_EQ(global_metrics().gauge("compute.thread_utilization").value(),
                   expected);
}

TEST_F(ObservabilityTest, ResultsBitIdenticalWithMetricsDisabled) {
  const auto with_metrics = run_periods(4, nullptr);
  global_metrics().clear();
  global_tracer().clear();
  set_metrics_enabled(false);
  const auto without_metrics = run_periods(4, nullptr);
  set_metrics_enabled(true);
  ASSERT_EQ(with_metrics.size(), without_metrics.size());
  for (std::size_t p = 0; p < with_metrics.size(); ++p) {
    EXPECT_EQ(with_metrics[p], without_metrics[p]) << "period " << p;
  }
  // Nothing was recorded while disabled.
  EXPECT_EQ(global_metrics().counter("system.periods").value(), 0u);
  EXPECT_EQ(global_tracer().names().size(), 0u);
}

TEST_F(ObservabilityTest, ResultsBitIdenticalAcrossThreadCountsAndMetrics) {
  const auto reference = run_periods(3, nullptr);
  for (const std::size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    const auto parallel_on = run_periods(3, &pool);
    set_metrics_enabled(false);
    const auto parallel_off = run_periods(3, &pool);
    set_metrics_enabled(true);
    ASSERT_EQ(parallel_on.size(), reference.size());
    for (std::size_t p = 0; p < reference.size(); ++p) {
      EXPECT_EQ(parallel_on[p], reference[p])
          << "threads=" << threads << " period " << p;
      EXPECT_EQ(parallel_off[p], reference[p])
          << "threads=" << threads << " period " << p << " (metrics off)";
    }
  }
}

TEST_F(ObservabilityTest, TrainingPopulatesLearningMetrics) {
  const auto model =
      std::make_shared<env::DirectServiceModel>(env::prototype_capacity());
  env::RaEnvironmentConfig env_cfg;
  env_cfg.intervals_per_period = 10;
  env::RaEnvironment environment(
      env_cfg, {env::slice1_profile(), env::slice2_profile()}, model,
      env::make_queue_power_perf(), Rng(1));
  Rng rng(2);
  rl::DdpgConfig agent_cfg;
  agent_cfg.base.state_dim = environment.state_dim();
  agent_cfg.base.action_dim = environment.action_dim();
  agent_cfg.base.hidden = 32;
  agent_cfg.batch_size = 32;
  agent_cfg.warmup = 64;
  rl::Ddpg agent(agent_cfg, rng);
  TrainingConfig training;
  training.steps = 150;  // past warmup, so train_batch runs
  training.validation_every = 0;
  train_agent(agent, environment, training, rng);

  auto& metrics = global_metrics();
  EXPECT_EQ(metrics.counter("train.steps").value(), 150u);
  EXPECT_TRUE(metrics.gauge("train.final_mean_reward").written());
  EXPECT_GT(metrics.counter("ddpg.train_batches").value(), 0u);
  EXPECT_TRUE(metrics.gauge("ddpg.critic_loss").written());
  EXPECT_TRUE(metrics.gauge("ddpg.replay_occupancy").written());
  EXPECT_GT(metrics.gauge("ddpg.replay_occupancy").value(), 0.0);
  EXPECT_TRUE(metrics.gauge("ddpg.exploration_sigma").written());
  EXPECT_EQ(global_tracer().overall("train.agent").count, 1u);
  const auto batches = global_tracer().overall("train.agent/ddpg.train_batch");
  EXPECT_EQ(batches.count, metrics.counter("ddpg.train_batches").value());
}

std::vector<double> run_periods_full_telemetry(std::size_t periods, ThreadPool* pool) {
  Stack stack = make_stack(2);
  obs::SlaWatchdog watchdog = obs::SlaWatchdog::from_u_min({-50.0, -50.0});
  SystemConfig system_config;
  system_config.pool = pool;
  system_config.watchdog = &watchdog;
  EdgeSliceSystem system(stack.env_ptrs(), stack.policy_ptrs(),
                         coordinator_config(2), system_config);
  std::vector<double> out;
  for (const auto& result : system.run(periods)) {
    out.push_back(result.system_performance);
  }
  return out;
}

TEST_F(ObservabilityTest, ResultsBitIdenticalWithFullTelemetryPlane) {
  // The whole plane at once — SLA watchdog attached, flight recorder
  // live, HTTP server scraping concurrently — against a metrics-disabled
  // run, at 1/2/4 threads. Orchestration must be bit-identical.
  obs::TelemetryServer server;  // ephemeral port
  ASSERT_TRUE(server.start());
  const auto reference = run_periods(3, nullptr);

  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    ThreadPool* pool_ptr = threads == 1 ? nullptr : &pool;
    const auto with_telemetry = run_periods_full_telemetry(3, pool_ptr);
    set_metrics_enabled(false);
    const auto without = run_periods_full_telemetry(3, pool_ptr);
    set_metrics_enabled(true);
    ASSERT_EQ(with_telemetry.size(), reference.size());
    for (std::size_t p = 0; p < reference.size(); ++p) {
      EXPECT_EQ(with_telemetry[p], reference[p])
          << "threads=" << threads << " period " << p;
      EXPECT_EQ(without[p], reference[p])
          << "threads=" << threads << " period " << p << " (telemetry off)";
    }
  }
  server.stop();
  // The plane did observe the runs: periods counted, watchdog published.
  EXPECT_GT(global_metrics().counter("system.periods").value(), 0u);
  EXPECT_TRUE(global_metrics().gauge("sla.margin.slice0").written());
}

TEST_F(ObservabilityTest, TrainingBitIdenticalWithTelemetryDisabled) {
  // train_agents must not be steered by the recorder/registry either:
  // identical reward and validation histories with telemetry on and off.
  const auto train_once = [] {
    const auto model =
        std::make_shared<env::DirectServiceModel>(env::prototype_capacity());
    env::RaEnvironmentConfig env_cfg;
    env_cfg.intervals_per_period = 10;
    env::RaEnvironment environment(
        env_cfg, {env::slice1_profile(), env::slice2_profile()}, model,
        env::make_queue_power_perf(), Rng(1));
    Rng rng(2);
    rl::DdpgConfig agent_cfg;
    agent_cfg.base.state_dim = environment.state_dim();
    agent_cfg.base.action_dim = environment.action_dim();
    agent_cfg.base.hidden = 16;
    agent_cfg.batch_size = 16;
    agent_cfg.warmup = 32;
    rl::Ddpg agent(agent_cfg, rng);
    TrainingConfig training;
    training.steps = 120;
    training.validation_every = 40;  // exercises the checkpoint event path
    return train_agent(agent, environment, training, rng);
  };
  const TrainingResult on = train_once();
  const std::uint64_t recorded_on = obs::global_event_log().recorded();
  set_metrics_enabled(false);
  const TrainingResult off = train_once();
  set_metrics_enabled(true);
  ASSERT_EQ(on.reward_history.size(), off.reward_history.size());
  for (std::size_t i = 0; i < on.reward_history.size(); ++i) {
    EXPECT_EQ(on.reward_history[i], off.reward_history[i]) << "step " << i;
  }
  ASSERT_EQ(on.validation_history.size(), off.validation_history.size());
  for (std::size_t i = 0; i < on.validation_history.size(); ++i) {
    EXPECT_EQ(on.validation_history[i], off.validation_history[i]);
  }
  EXPECT_EQ(on.best_validation_score, off.best_validation_score);
  // The enabled run recorded validation checkpoints; the disabled one
  // recorded nothing further.
  EXPECT_GT(recorded_on, 0u);
  EXPECT_EQ(obs::global_event_log().recorded(), recorded_on);
}

TEST_F(ObservabilityTest, SystemRunFeedsTheFlightRecorderAndWatchdog) {
  Stack stack = make_stack(2);
  obs::SlaWatchdog watchdog = obs::SlaWatchdog::from_u_min({-50.0, -50.0});
  SystemConfig system_config;
  system_config.watchdog = &watchdog;
  EdgeSliceSystem system(stack.env_ptrs(), stack.policy_ptrs(),
                         coordinator_config(2), system_config);
  system.run(3);
  EXPECT_EQ(watchdog.periods_evaluated(), 3u);
  // Fault-free run: every delivered RC-M report becomes an event, with
  // the running period stamped by the system.
  const auto events = obs::global_event_log().snapshot();
  std::size_t delivered = 0;
  for (const auto& e : events) {
    if (e.kind == obs::EventKind::RcmDelivered) {
      ++delivered;
      EXPECT_LT(e.period, 3u);
      EXPECT_LT(e.ra, 2u);
    }
  }
  EXPECT_EQ(delivered, 6u);  // 2 RAs x 3 periods
}

TEST_F(ObservabilityTest, PoolRunRecordsQueueWaitSpans) {
  ThreadPool pool(3);
  run_periods(2, &pool);
  EXPECT_EQ(global_tracer().overall("system.pool_queue_wait").count, 4u);
  EXPECT_EQ(global_tracer().overall("system.ra_intervals").count, 4u);
}

}  // namespace
}  // namespace edgeslice::core
