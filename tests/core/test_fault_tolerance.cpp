// Chaos tests for the control plane: FaultInjector determinism, MessageBus
// drop/delay/sequencing, and EdgeSliceSystem degraded-mode orchestration
// (carry-forward, staleness freeze, crash/rejoin, RC-L fallback).
#include <sys/wait.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "core/message_bus.h"
#include "core/system.h"
#include "env/service_model.h"

namespace edgeslice::core {
namespace {

bool all_finite(const PeriodResult& result) {
  for (double v : result.performance_sums.data()) {
    if (!std::isfinite(v)) return false;
  }
  for (double v : result.slice_performance) {
    if (!std::isfinite(v)) return false;
  }
  return std::isfinite(result.system_performance);
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjector, EmptyPlanNeverFires) {
  FaultInjector injector{FaultPlan{}};
  EXPECT_FALSE(injector.any_faults());
  for (std::size_t p = 0; p < 20; ++p) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_FALSE(injector.ra_crashed(p, j));
      EXPECT_FALSE(injector.drop_rcm(p, j));
      EXPECT_EQ(injector.rcm_delay(p, j), 0u);
      EXPECT_FALSE(injector.drop_rcl(p, j));
      EXPECT_FALSE(injector.cqi_blackout(p, j));
      EXPECT_FALSE(injector.link_failure(p, j));
      EXPECT_DOUBLE_EQ(injector.compute_slowdown(p, j), 1.0);
    }
  }
}

TEST(FaultInjector, ScheduledEventCoversItsWindowOnly) {
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultType::RaCrash, 5, 1, 3, 1.0});
  FaultInjector injector{plan};
  EXPECT_TRUE(injector.any_faults());
  EXPECT_FALSE(injector.ra_crashed(4, 1));
  EXPECT_TRUE(injector.ra_crashed(5, 1));
  EXPECT_TRUE(injector.ra_crashed(7, 1));
  EXPECT_FALSE(injector.ra_crashed(8, 1));
  EXPECT_FALSE(injector.ra_crashed(6, 0));  // other RA unaffected
}

TEST(FaultInjector, DecisionsAreDeterministicAndOrderIndependent) {
  FaultPlan plan;
  plan.seed = 42;
  plan.rates.rcm_drop = 0.5;
  plan.rates.rcl_drop = 0.3;
  FaultInjector a{plan};
  FaultInjector b{plan};
  // Query b in reverse order; answers must still match a pointwise.
  std::vector<bool> a_decisions;
  for (std::size_t p = 0; p < 50; ++p) a_decisions.push_back(a.drop_rcm(p, 0));
  for (std::size_t p = 50; p-- > 0;) {
    EXPECT_EQ(b.drop_rcm(p, 0), a_decisions[p]) << "period " << p;
  }
  // Repeated queries are stable.
  for (std::size_t p = 0; p < 50; ++p) EXPECT_EQ(a.drop_rcm(p, 0), a_decisions[p]);
}

TEST(FaultInjector, SeedChangesDecisions) {
  FaultPlan plan;
  plan.rates.rcm_drop = 0.5;
  plan.seed = 1;
  FaultInjector a{plan};
  plan.seed = 2;
  FaultInjector b{plan};
  bool any_difference = false;
  for (std::size_t p = 0; p < 200 && !any_difference; ++p) {
    if (a.drop_rcm(p, 0) != b.drop_rcm(p, 0)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultInjector, RateTriggeredCrashLastsItsDuration) {
  FaultPlan plan;
  plan.seed = 7;
  plan.rates.ra_crash = 0.1;
  plan.rates.ra_crash_periods = 4;
  FaultInjector injector{plan};
  // Find a trigger period, then check the window extends 4 periods.
  for (std::size_t p = 0; p < 200; ++p) {
    if (!injector.ra_crashed(p, 0)) continue;
    bool freshly_triggered = p == 0 || !injector.ra_crashed(p - 1, 0);
    if (!freshly_triggered) continue;
    EXPECT_TRUE(injector.ra_crashed(p + 1, 0));
    EXPECT_TRUE(injector.ra_crashed(p + 3, 0));
    return;
  }
  FAIL() << "no crash triggered in 200 periods at rate 0.1";
}

TEST(FaultInjector, ValidatesPlan) {
  FaultPlan plan;
  plan.rates.rcm_drop = 1.5;
  EXPECT_THROW(FaultInjector{plan}, std::invalid_argument);
  plan = FaultPlan{};
  plan.rates.compute_slowdown_factor = 0.5;
  EXPECT_THROW(FaultInjector{plan}, std::invalid_argument);
  plan = FaultPlan{};
  plan.events.push_back(FaultEvent{FaultType::RcmDrop, 0, 0, 0, 1.0});  // zero duration
  EXPECT_THROW(FaultInjector{plan}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// MessageBus
// ---------------------------------------------------------------------------

RcMonitoringMessage make_report(std::size_t ra, std::vector<double> sums) {
  RcMonitoringMessage msg;
  msg.ra = ra;
  msg.performance_sums = std::move(sums);
  return msg;
}

TEST(MessageBus, LosslessWithoutInjectorAndSequenced) {
  MessageBus bus;
  bus.post_report(0, make_report(0, {-1.0, -2.0}));
  bus.post_report(0, make_report(1, {-3.0, -4.0}));
  const auto due = bus.collect_reports(0);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].seq, 0u);
  EXPECT_EQ(due[1].seq, 1u);
  EXPECT_EQ(due[0].message.ra, 0u);
  EXPECT_EQ(bus.in_flight(), 0u);
  EXPECT_TRUE(bus.deliver_coordination(0, RcLearningMessage{0, {-1.0, -1.0}}));
  EXPECT_EQ(bus.stats().rcm_delivered, 2u);
  EXPECT_EQ(bus.stats().rcl_dropped, 0u);
}

TEST(MessageBus, DropsAndCounts) {
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultType::RcmDrop, 0, 0, 1, 1.0});
  FaultInjector injector{plan};
  MessageBus bus(&injector);
  bus.post_report(0, make_report(0, {-1.0}));
  bus.post_report(0, make_report(1, {-2.0}));
  const auto due = bus.collect_reports(0);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].message.ra, 1u);
  EXPECT_EQ(bus.stats().rcm_dropped, 1u);
}

TEST(MessageBus, DelayedReportSurfacesLaterInOrder) {
  FaultPlan plan;
  FaultEvent delay{FaultType::RcmDelay, 0, 0, 1, 2.0};  // RA 0's period-0 report +2
  plan.events.push_back(delay);
  FaultInjector injector{plan};
  MessageBus bus(&injector);
  bus.post_report(0, make_report(0, {-1.0}));
  EXPECT_TRUE(bus.collect_reports(0).empty());
  EXPECT_EQ(bus.in_flight(), 1u);
  EXPECT_TRUE(bus.collect_reports(1).empty());
  bus.post_report(2, make_report(0, {-9.0}));
  const auto due = bus.collect_reports(2);
  ASSERT_EQ(due.size(), 2u);
  // The delayed period-0 report sorts before the fresh period-2 report.
  EXPECT_EQ(due[0].sent_period, 0u);
  EXPECT_EQ(due[1].sent_period, 2u);
  EXPECT_EQ(bus.stats().rcm_delayed, 1u);
}

TEST(MessageBus, RclDropReported) {
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultType::RclDrop, 3, 1, 1, 1.0});
  FaultInjector injector{plan};
  MessageBus bus(&injector);
  EXPECT_TRUE(bus.deliver_coordination(3, RcLearningMessage{0, {0.0}}));
  EXPECT_FALSE(bus.deliver_coordination(3, RcLearningMessage{1, {0.0}}));
  EXPECT_EQ(bus.stats().rcl_dropped, 1u);
}

// ---------------------------------------------------------------------------
// EdgeSliceSystem under faults
// ---------------------------------------------------------------------------

class FaultSystemTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kSlices = 2;
  static constexpr std::size_t kRas = 2;

  void build(const SystemConfig& system_config) {
    environments_.clear();
    policies_.clear();
    const auto model =
        std::make_shared<env::DirectServiceModel>(env::prototype_capacity());
    env::RaEnvironmentConfig config;
    config.intervals_per_period = 5;
    for (std::size_t j = 0; j < kRas; ++j) {
      environments_.push_back(std::make_unique<env::RaEnvironment>(
          config,
          std::vector<env::AppProfile>{env::slice1_profile(), env::slice2_profile()},
          model, env::make_queue_power_perf(), Rng(100 + j)));
      policies_.push_back(std::make_unique<TaroPolicy>());
    }
    CoordinatorConfig coordinator;
    coordinator.slices = kSlices;
    coordinator.ras = kRas;
    std::vector<env::RaEnvironment*> env_ptrs;
    std::vector<RaPolicy*> policy_ptrs;
    for (auto& e : environments_) env_ptrs.push_back(e.get());
    for (auto& p : policies_) policy_ptrs.push_back(p.get());
    system_ = std::make_unique<EdgeSliceSystem>(env_ptrs, policy_ptrs, coordinator,
                                                system_config);
  }

  std::vector<std::unique_ptr<env::RaEnvironment>> environments_;
  std::vector<std::unique_ptr<RaPolicy>> policies_;
  std::unique_ptr<EdgeSliceSystem> system_;
};

TEST_F(FaultSystemTest, ZeroFaultPlanMatchesFaultFreeRunExactly) {
  // The message bus must be behavior-neutral: a system wired to an empty
  // FaultPlan reproduces the plain system bit-for-bit.
  build(SystemConfig{});
  const auto baseline = system_->run(6);

  FaultPlan plan;  // no events, zero rates
  FaultInjector injector{plan};
  SystemConfig chaos_config;
  chaos_config.faults = &injector;
  build(chaos_config);
  const auto chaos = system_->run(6);

  ASSERT_EQ(baseline.size(), chaos.size());
  for (std::size_t p = 0; p < baseline.size(); ++p) {
    EXPECT_EQ(baseline[p].performance_sums.data(), chaos[p].performance_sums.data());
    EXPECT_EQ(baseline[p].system_performance, chaos[p].system_performance);
    EXPECT_EQ(chaos[p].crashed_ras, 0u);
    EXPECT_EQ(chaos[p].reports_carried, 0u);
    EXPECT_EQ(chaos[p].columns_frozen, 0u);
    EXPECT_EQ(chaos[p].rcl_losses, 0u);
    EXPECT_EQ(chaos[p].reports_fresh, kRas);
  }
}

TEST_F(FaultSystemTest, CoordinatorSeesExactPeriodSumsThroughTheBus) {
  // The invariant the pre-bus code provided: the coordinator consumes the
  // exact per-period performance sums. Replay them into a standalone
  // coordinator and compare z/y.
  build(SystemConfig{});
  CoordinatorConfig coordinator_config;
  coordinator_config.slices = kSlices;
  coordinator_config.ras = kRas;
  PerformanceCoordinator reference(coordinator_config);
  for (std::size_t p = 0; p < 4; ++p) {
    const auto result = system_->run_period();
    reference.update(result.performance_sums);
    for (std::size_t i = 0; i < kSlices; ++i) {
      for (std::size_t j = 0; j < kRas; ++j) {
        EXPECT_EQ(system_->coordinator().z(i, j), reference.z(i, j));
        EXPECT_EQ(system_->coordinator().y(i, j), reference.y(i, j));
      }
    }
  }
}

TEST_F(FaultSystemTest, DroppedReportIsCarriedForward) {
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultType::RcmDrop, 2, 1, 1, 1.0});
  FaultInjector injector{plan};
  SystemConfig config;
  config.faults = &injector;
  build(config);
  system_->run(2);
  const auto result = system_->run_period();  // period 2: RA 1's report lost
  EXPECT_EQ(result.reports_fresh, 1u);
  EXPECT_EQ(result.reports_carried, 1u);
  EXPECT_EQ(result.columns_frozen, 0u);
  EXPECT_TRUE(all_finite(result));
}

TEST_F(FaultSystemTest, PersistentSilenceFreezesColumnsAfterCutoff) {
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultType::RcmDrop, 3, 1, 1000, 1.0});
  FaultInjector injector{plan};
  SystemConfig config;
  config.faults = &injector;
  config.max_report_staleness = 2;
  build(config);
  // Periods 0-2 deliver; silence starts at period 3. Staleness exceeds 2
  // from period 5 on (last report sent at period 2).
  std::vector<PeriodResult> results = system_->run(6);
  EXPECT_EQ(results[3].reports_carried, 1u);
  EXPECT_EQ(results[4].reports_carried, 1u);
  EXPECT_EQ(results[5].columns_frozen, 1u);

  // Frozen means frozen: the silent RA's z/y columns stop moving while the
  // live RA's continue to update.
  std::vector<double> z_frozen(kSlices), y_frozen(kSlices);
  for (std::size_t i = 0; i < kSlices; ++i) {
    z_frozen[i] = system_->coordinator().z(i, 1);
    y_frozen[i] = system_->coordinator().y(i, 1);
  }
  const auto later = system_->run(4);
  for (const auto& r : later) EXPECT_EQ(r.columns_frozen, 1u);
  for (std::size_t i = 0; i < kSlices; ++i) {
    EXPECT_EQ(system_->coordinator().z(i, 1), z_frozen[i]);
    EXPECT_EQ(system_->coordinator().y(i, 1), y_frozen[i]);
  }
}

TEST_F(FaultSystemTest, CrashedRaSkipsIntervalsAndRejoins) {
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultType::RaCrash, 1, 0, 2, 1.0});
  FaultInjector injector{plan};
  SystemConfig config;
  config.faults = &injector;
  build(config);

  const auto before = system_->run_period();
  EXPECT_EQ(before.crashed_ras, 0u);
  const std::size_t rows_healthy = system_->monitor().records().size();

  const auto down = system_->run(2);  // periods 1-2: RA 0 down
  for (const auto& r : down) {
    EXPECT_EQ(r.crashed_ras, 1u);
    EXPECT_TRUE(all_finite(r));
    for (std::size_t i = 0; i < kSlices; ++i) {
      EXPECT_DOUBLE_EQ(r.performance_sums(i, 0), 0.0);  // nothing served
    }
  }
  // Only the live RA recorded monitoring rows while RA 0 was down.
  EXPECT_EQ(system_->monitor().records().size(), rows_healthy + 2 * 5);

  const auto rejoined = system_->run_period();  // period 3: clean rejoin
  EXPECT_EQ(rejoined.crashed_ras, 0u);
  EXPECT_EQ(rejoined.reports_fresh, kRas);
  EXPECT_TRUE(all_finite(rejoined));
  EXPECT_EQ(system_->period_count(), 4u);
}

TEST_F(FaultSystemTest, RclLossKeepsLastCoordinationVector) {
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultType::RclDrop, 1, 0, 1, 1.0});
  FaultInjector injector{plan};
  SystemConfig config;
  config.faults = &injector;
  build(config);
  system_->run_period();
  const std::vector<double> before = environments_[0]->coordination();
  const auto result = system_->run_period();  // period 1: RC-L to RA 0 lost
  EXPECT_EQ(result.rcl_losses, 1u);
  EXPECT_EQ(environments_[0]->coordination(), before);  // fallback: unchanged
  // RA 1 received its push as usual.
  const auto fresh = system_->run_period();
  EXPECT_EQ(fresh.rcl_losses, 0u);
}

TEST_F(FaultSystemTest, SubstrateFaultsDegradeButNeverBreak) {
  // One scenario per substrate fault type, each run to completion.
  const std::vector<FaultEvent> scenarios = {
      {FaultType::CqiBlackout, 2, 0, 3, 1.0},
      {FaultType::LinkFailure, 2, 1, 3, 1.0},
      {FaultType::ComputeSlowdown, 2, 0, 3, 4.0},
  };
  for (const auto& event : scenarios) {
    FaultPlan plan;
    plan.events.push_back(event);
    FaultInjector injector{plan};
    SystemConfig config;
    config.faults = &injector;
    build(config);
    const auto results = system_->run(8);
    EXPECT_EQ(results.size(), 8u);
    for (const auto& r : results) EXPECT_TRUE(all_finite(r));
  }
}

TEST_F(FaultSystemTest, TenPercentDropPlusCrashRestartStaysClose) {
  // Acceptance scenario: 10% RC-M drop + one mid-run crash/restart must
  // complete every period with finite values, and keep SLA satisfaction
  // (fraction of (period, slice) pairs whose network-wide performance
  // meets u_min) within 15% of the fault-free run.
  const std::size_t periods = 30;
  build(SystemConfig{});
  const auto baseline = system_->run(periods);

  FaultPlan plan;
  plan.seed = 2026;
  plan.rates.rcm_drop = 0.10;
  plan.events.push_back(FaultEvent{FaultType::RaCrash, 12, 1, 3, 1.0});
  FaultInjector injector{plan};
  SystemConfig config;
  config.faults = &injector;
  build(config);
  const auto chaos = system_->run(periods);

  ASSERT_EQ(chaos.size(), periods);
  const auto& u_min = system_->coordinator().config().u_min;
  auto sla_fraction = [&](const std::vector<PeriodResult>& results) {
    std::size_t met = 0;
    for (const auto& r : results) {
      for (std::size_t i = 0; i < kSlices; ++i) {
        double total = 0.0;
        for (std::size_t j = 0; j < kRas; ++j) total += r.performance_sums(i, j);
        if (total >= u_min[i] - 1e-9) ++met;
      }
    }
    return static_cast<double>(met) / static_cast<double>(results.size() * kSlices);
  };
  for (const auto& r : chaos) EXPECT_TRUE(all_finite(r));
  EXPECT_NEAR(sla_fraction(chaos), sla_fraction(baseline), 0.15);
}

TEST_F(FaultSystemTest, CombinedFaultsNeverProduceNaNs) {
  FaultPlan plan;
  plan.seed = 99;
  plan.rates.rcm_drop = 0.2;
  plan.rates.rcm_delay = 0.2;
  plan.rates.rcm_delay_periods = 2;
  plan.rates.rcl_drop = 0.2;
  plan.rates.ra_crash = 0.05;
  plan.rates.ra_crash_periods = 2;
  plan.rates.cqi_blackout = 0.1;
  plan.rates.link_failure = 0.1;
  plan.rates.compute_slowdown = 0.1;
  plan.rates.compute_slowdown_factor = 3.0;
  FaultInjector injector{plan};
  SystemConfig config;
  config.faults = &injector;
  build(config);
  const auto results = system_->run(40);
  EXPECT_EQ(results.size(), 40u);
  for (const auto& r : results) {
    EXPECT_TRUE(all_finite(r));
    for (std::size_t i = 0; i < kSlices; ++i) {
      for (std::size_t j = 0; j < kRas; ++j) {
        EXPECT_TRUE(std::isfinite(system_->coordinator().z(i, j)));
        EXPECT_TRUE(std::isfinite(system_->coordinator().y(i, j)));
      }
    }
  }
  EXPECT_EQ(system_->period_count(), 40u);
}

TEST_F(FaultSystemTest, ChaosRunIsBitReproducible) {
  FaultPlan plan;
  plan.seed = 7;
  plan.rates.rcm_drop = 0.15;
  plan.rates.rcl_drop = 0.1;
  plan.rates.ra_crash = 0.05;
  plan.rates.ra_crash_periods = 2;

  auto run_once = [&]() {
    FaultInjector injector{plan};
    SystemConfig config;
    config.faults = &injector;
    build(config);
    return system_->run(20);
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t p = 0; p < first.size(); ++p) {
    EXPECT_EQ(first[p].performance_sums.data(), second[p].performance_sums.data());
    EXPECT_EQ(first[p].system_performance, second[p].system_performance);
    EXPECT_EQ(first[p].crashed_ras, second[p].crashed_ras);
    EXPECT_EQ(first[p].reports_fresh, second[p].reports_fresh);
    EXPECT_EQ(first[p].rcl_losses, second[p].rcl_losses);
  }
}

// ---------------------------------------------------------------------------
// Chaos harness + flight recorder (subprocess tests against the real
// ablation_fault_tolerance binary; EDGESLICE_CHAOS_BENCH_PATH is injected
// by the build).
// ---------------------------------------------------------------------------
#ifdef EDGESLICE_CHAOS_BENCH_PATH

/// Read `path` and assert every line is a complete flight-recorder JSON
/// object; returns the parsed-ish lines for further checks.
std::vector<std::string> require_valid_jsonl(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing dump " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"seq\": "), std::string::npos) << line;
    EXPECT_NE(line.find("\"kind\": \""), std::string::npos) << line;
    lines.push_back(line);
  }
  return lines;
}

bool line_is_fault_event(const std::string& line) {
  for (const char* kind :
       {"\"kind\": \"rcm.dropped\"", "\"kind\": \"rcm.delayed\"",
        "\"kind\": \"rcl.dropped\"", "\"kind\": \"fault.ra_crash\"",
        "\"kind\": \"fault.cqi_blackout\"", "\"kind\": \"fault.link_failure\"",
        "\"kind\": \"fault.compute_slowdown\""}) {
    if (line.find(kind) != std::string::npos) return true;
  }
  return false;
}

TEST(ChaosHarness, CleanRunDumpsFlightRecorderJsonl) {
  const std::string dump = ::testing::TempDir() + "chaos_events.jsonl";
  std::remove(dump.c_str());
  const std::string command = std::string(EDGESLICE_CHAOS_BENCH_PATH) +
                              " --periods 2 --events-out " + dump +
                              " > /dev/null 2>&1";
  const int status = std::system(command.c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  const auto lines = require_valid_jsonl(dump);
  ASSERT_FALSE(lines.empty());
  // The scenario table schedules RA crashes and message loss, so the
  // window must contain injected-fault events.
  std::size_t faults = 0;
  for (const auto& line : lines) {
    if (line_is_fault_event(line)) ++faults;
  }
  EXPECT_GT(faults, 0u);
  std::remove(dump.c_str());
}

TEST(ChaosHarness, ForcedAbortDumpsFaultEventWithPrecedingWindow) {
  // Acceptance: a forced abort mid-chaos must leave a JSONL dump holding
  // an injected-fault event preceded by >= 64 events of context.
  const std::string dump = ::testing::TempDir() + "chaos_crash.jsonl";
  std::remove(dump.c_str());
  const std::string command = std::string(EDGESLICE_CHAOS_BENCH_PATH) +
                              " --periods 15 --events-out " + dump +
                              " --crash-at-period 45 > /dev/null 2>&1";
  const int status = std::system(command.c_str());
  // Dies by SIGABRT; system() reports it as a signaled child.
  ASSERT_TRUE(WIFSIGNALED(status) ||
              (WIFEXITED(status) && WEXITSTATUS(status) != 0));
  const auto lines = require_valid_jsonl(dump);
  ASSERT_GE(lines.size(), 65u);
  std::size_t last_fault = 0;
  bool any_fault = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (line_is_fault_event(lines[i])) {
      last_fault = i;
      any_fault = true;
    }
  }
  ASSERT_TRUE(any_fault);
  EXPECT_GE(last_fault, 64u);
  std::remove(dump.c_str());
}

#endif  // EDGESLICE_CHAOS_BENCH_PATH

}  // namespace
}  // namespace edgeslice::core
