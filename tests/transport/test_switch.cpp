#include "transport/switch.h"

#include <gtest/gtest.h>

namespace edgeslice::transport {
namespace {

TEST(Switch, MeterCrud) {
  OpenFlowSwitch sw("of:1");
  sw.add_meter(Meter{1, 40.0});
  EXPECT_TRUE(sw.has_meter(1));
  EXPECT_DOUBLE_EQ(sw.meter_rate(1), 40.0);
  EXPECT_THROW(sw.add_meter(Meter{1, 10.0}), std::invalid_argument);
  sw.delete_meter(1);
  EXPECT_FALSE(sw.has_meter(1));
  EXPECT_THROW(sw.delete_meter(1), std::invalid_argument);
}

TEST(Switch, NegativeRateRejected) {
  OpenFlowSwitch sw("of:1");
  EXPECT_THROW(sw.add_meter(Meter{1, -5.0}), std::invalid_argument);
}

TEST(Switch, FlowCrud) {
  OpenFlowSwitch sw("of:1");
  sw.add_flow(FlowEntry{1, "10.0.0.1", "192.168.0.1", std::nullopt, 0});
  EXPECT_TRUE(sw.has_flow(1));
  EXPECT_THROW(sw.add_flow(FlowEntry{1, "", "", std::nullopt, 0}), std::invalid_argument);
  sw.delete_flow(1);
  EXPECT_FALSE(sw.has_flow(1));
  EXPECT_THROW(sw.delete_flow(1), std::invalid_argument);
}

TEST(Switch, FlowReferencingUnknownMeterRejected) {
  OpenFlowSwitch sw("of:1");
  EXPECT_THROW(sw.add_flow(FlowEntry{1, "", "", MeterId{9}, 0}), std::invalid_argument);
}

TEST(Switch, MeterDeleteBlockedWhileAttached) {
  // The OpenFlow constraint behind the paper's hitless-reconfig design:
  // a meter cannot be removed while flows reference it.
  OpenFlowSwitch sw("of:1");
  sw.add_meter(Meter{1, 40.0});
  sw.add_flow(FlowEntry{1, "", "", MeterId{1}, 0});
  EXPECT_THROW(sw.delete_meter(1), std::logic_error);
  sw.delete_flow(1);
  EXPECT_NO_THROW(sw.delete_meter(1));
}

TEST(Switch, TableMissDrops) {
  OpenFlowSwitch sw("of:1");
  const auto result = sw.forward("10.0.0.1", "192.168.0.1", 10.0);
  EXPECT_FALSE(result.matched);
  EXPECT_DOUBLE_EQ(result.dropped_mbps, 10.0);
  EXPECT_DOUBLE_EQ(result.forwarded_mbps, 0.0);
}

TEST(Switch, MatchingFlowForwards) {
  OpenFlowSwitch sw("of:1");
  sw.add_flow(FlowEntry{1, "10.0.0.1", "192.168.0.1", std::nullopt, 0});
  const auto result = sw.forward("10.0.0.1", "192.168.0.1", 10.0);
  EXPECT_TRUE(result.matched);
  EXPECT_DOUBLE_EQ(result.forwarded_mbps, 10.0);
}

TEST(Switch, WildcardMatches) {
  OpenFlowSwitch sw("of:1");
  sw.add_flow(FlowEntry{1, "", "", std::nullopt, 0});
  EXPECT_TRUE(sw.forward("1.2.3.4", "5.6.7.8", 1.0).matched);
}

TEST(Switch, MeterLimitsRate) {
  OpenFlowSwitch sw("of:1");
  sw.add_meter(Meter{1, 8.0});
  sw.add_flow(FlowEntry{1, "", "", MeterId{1}, 0});
  const auto result = sw.forward("a", "b", 10.0);
  EXPECT_DOUBLE_EQ(result.forwarded_mbps, 8.0);
  EXPECT_DOUBLE_EQ(result.dropped_mbps, 2.0);
}

TEST(Switch, HighestPriorityWins) {
  OpenFlowSwitch sw("of:1");
  sw.add_meter(Meter{1, 1.0});
  sw.add_meter(Meter{2, 50.0});
  sw.add_flow(FlowEntry{1, "", "", MeterId{1}, 0});
  sw.add_flow(FlowEntry{2, "", "", MeterId{2}, 5});
  EXPECT_DOUBLE_EQ(sw.forward("a", "b", 10.0).forwarded_mbps, 10.0);
}

TEST(Switch, SpecificMatchBeatsWildcardOnPriority) {
  OpenFlowSwitch sw("of:1");
  sw.add_flow(FlowEntry{1, "", "", std::nullopt, 1});
  sw.add_meter(Meter{1, 2.0});
  sw.add_flow(FlowEntry{2, "10.0.0.1", "", MeterId{1}, 10});
  EXPECT_DOUBLE_EQ(sw.forward("10.0.0.1", "x", 10.0).forwarded_mbps, 2.0);
  EXPECT_DOUBLE_EQ(sw.forward("10.0.0.2", "x", 10.0).forwarded_mbps, 10.0);
}

}  // namespace
}  // namespace edgeslice::transport
