#include "transport/controller.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace edgeslice::transport {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() {
    for (int i = 0; i < 6; ++i) {
      switches_.push_back(std::make_unique<OpenFlowSwitch>("of:" + std::to_string(i)));
      path_.push_back(switches_.back().get());
    }
  }

  SliceProgram program(std::size_t slice, double rate) {
    SliceProgram p;
    p.slice = slice;
    p.src_ip = "10.0." + std::to_string(slice) + ".1";
    p.dst_ip = "192.168.0.1";
    p.rate_mbps = rate;
    return p;
  }

  std::vector<std::unique_ptr<OpenFlowSwitch>> switches_;
  std::vector<OpenFlowSwitch*> path_;
};

TEST_F(ControllerTest, EmptyPathThrows) {
  EXPECT_THROW(SdnController({}), std::invalid_argument);
  EXPECT_THROW(SdnController({nullptr}), std::invalid_argument);
}

TEST_F(ControllerTest, InitialInstallHasNoOutage) {
  SdnController controller(path_);
  const auto report = controller.apply(program(0, 40.0), ReconfigStrategy::NaiveDeleteRecreate);
  EXPECT_DOUBLE_EQ(report.outage_seconds, 0.0);
  EXPECT_DOUBLE_EQ(controller.end_to_end_rate("10.0.0.1", "192.168.0.1", 100.0), 40.0);
}

TEST_F(ControllerTest, NaiveReconfigCausesOutage) {
  SdnController controller(path_);
  controller.apply(program(0, 40.0), ReconfigStrategy::NaiveDeleteRecreate);
  const auto report = controller.apply(program(0, 20.0), ReconfigStrategy::NaiveDeleteRecreate);
  // One deletion-creation gap per switch on the path.
  EXPECT_NEAR(report.outage_seconds, 6 * ControllerConfig{}.deletion_creation_gap_s, 1e-12);
  EXPECT_GT(controller.total_outage_seconds(), 0.0);
}

TEST_F(ControllerTest, HitlessReconfigHasZeroOutage) {
  SdnController controller(path_);
  controller.apply(program(0, 40.0), ReconfigStrategy::ParallelHitless);
  const auto report = controller.apply(program(0, 20.0), ReconfigStrategy::ParallelHitless);
  EXPECT_DOUBLE_EQ(report.outage_seconds, 0.0);
  EXPECT_DOUBLE_EQ(controller.total_outage_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(controller.end_to_end_rate("10.0.0.1", "192.168.0.1", 100.0), 20.0);
}

TEST_F(ControllerTest, HitlessLeavesNoStaleState) {
  SdnController controller(path_);
  for (int i = 0; i < 5; ++i) {
    controller.apply(program(0, 10.0 + i), ReconfigStrategy::ParallelHitless);
  }
  // Exactly one meter and one flow per switch for the slice.
  for (const auto* sw : path_) {
    EXPECT_EQ(sw->flow_count(), 1u);
    EXPECT_EQ(sw->meter_count(), 1u);
  }
}

TEST_F(ControllerTest, RepeatedNaiveReconfigAccumulatesOutage) {
  SdnController controller(path_);
  controller.apply(program(0, 40.0), ReconfigStrategy::NaiveDeleteRecreate);
  controller.apply(program(0, 30.0), ReconfigStrategy::NaiveDeleteRecreate);
  controller.apply(program(0, 20.0), ReconfigStrategy::NaiveDeleteRecreate);
  EXPECT_NEAR(controller.total_outage_seconds(),
              2 * 6 * ControllerConfig{}.deletion_creation_gap_s, 1e-12);
}

TEST_F(ControllerTest, SlicesAreIndependentPrograms) {
  SdnController controller(path_);
  controller.apply(program(0, 40.0), ReconfigStrategy::ParallelHitless);
  controller.apply(program(1, 10.0), ReconfigStrategy::ParallelHitless);
  EXPECT_DOUBLE_EQ(controller.end_to_end_rate("10.0.0.1", "192.168.0.1", 100.0), 40.0);
  EXPECT_DOUBLE_EQ(controller.end_to_end_rate("10.0.1.1", "192.168.0.1", 100.0), 10.0);
}

TEST_F(ControllerTest, EndToEndIsMinAcrossPath) {
  SdnController controller(path_);
  controller.apply(program(0, 40.0), ReconfigStrategy::ParallelHitless);
  // Manually tighten one mid-path switch's meter: end-to-end follows the min.
  path_[3]->add_meter(Meter{999, 5.0});
  path_[3]->add_flow(FlowEntry{999, "10.0.0.1", "192.168.0.1", MeterId{999}, 100});
  EXPECT_DOUBLE_EQ(controller.end_to_end_rate("10.0.0.1", "192.168.0.1", 100.0), 5.0);
}

TEST_F(ControllerTest, UnknownTrafficDropsEndToEnd) {
  SdnController controller(path_);
  controller.apply(program(0, 40.0), ReconfigStrategy::ParallelHitless);
  EXPECT_DOUBLE_EQ(controller.end_to_end_rate("99.9.9.9", "192.168.0.1", 10.0), 0.0);
}

}  // namespace
}  // namespace edgeslice::transport
