#include "transport/transport_manager.h"

#include <gtest/gtest.h>

namespace edgeslice::transport {
namespace {

TransportManagerConfig prototype_config() {
  TransportManagerConfig config;
  config.link_capacity_mbps = 80.0;  // Table II
  config.slices = 2;
  config.switches = 6;
  return config;
}

TEST(TransportManager, ShareMapsToMeterRate) {
  TransportManager manager(prototype_config());
  manager.set_slice_share(0, 0.5);
  EXPECT_DOUBLE_EQ(manager.slice_rate_mbps(0), 40.0);
  EXPECT_DOUBLE_EQ(manager.offered_load_rate(0, 100.0), 40.0);
}

TEST(TransportManager, ValidatesInput) {
  TransportManager manager(prototype_config());
  EXPECT_THROW(manager.set_slice_share(0, 1.5), std::invalid_argument);
  EXPECT_THROW(manager.set_slice_share(7, 0.5), std::out_of_range);
  EXPECT_THROW(manager.slice_capacity_bits(0, -1.0), std::invalid_argument);
}

TEST(TransportManager, CapacityBitsForInterval) {
  TransportManager manager(prototype_config());
  manager.set_slice_share(0, 0.25);
  EXPECT_DOUBLE_EQ(manager.slice_capacity_bits(0, 1.0), 20e6);
  EXPECT_DOUBLE_EQ(manager.slice_capacity_bits(0, 2.0), 40e6);
}

TEST(TransportManager, HitlessDefaultHasNoOutage) {
  TransportManager manager(prototype_config());
  for (int i = 0; i < 10; ++i) {
    manager.set_slice_share(0, 0.1 * (i + 1) / 2.0);
  }
  EXPECT_DOUBLE_EQ(manager.total_outage_seconds(), 0.0);
}

TEST(TransportManager, NaiveStrategyChargesOutageAgainstCapacity) {
  TransportManagerConfig config = prototype_config();
  config.strategy = ReconfigStrategy::NaiveDeleteRecreate;
  TransportManager manager(config);
  manager.set_slice_share(0, 0.5);   // install: no outage
  manager.set_slice_share(0, 0.25);  // reconfig: 6 * 0.05 s outage
  const double capacity = manager.slice_capacity_bits(0, 1.0);
  EXPECT_NEAR(capacity, 20e6 * (1.0 - 0.3), 1e-3);
  // Outage was consumed; the next interval is clean.
  EXPECT_NEAR(manager.slice_capacity_bits(0, 1.0), 20e6, 1e-3);
}

TEST(TransportManager, ReconfigReportCountsMods) {
  TransportManager manager(prototype_config());
  const auto report = manager.set_slice_share(0, 0.5);
  EXPECT_EQ(report.flow_mods, 6u);
  EXPECT_EQ(report.meter_mods, 6u);
}

TEST(TransportManager, CustomEndpointsRespected) {
  TransportManager manager(prototype_config());
  manager.register_slice_endpoints(1, "10.9.9.9", "192.168.7.7");
  manager.set_slice_share(1, 0.5);
  EXPECT_DOUBLE_EQ(manager.offered_load_rate(1, 100.0), 40.0);
}

TEST(TransportManager, SlicesShareIsIndependent) {
  TransportManager manager(prototype_config());
  manager.set_slice_share(0, 0.75);
  manager.set_slice_share(1, 0.25);
  EXPECT_DOUBLE_EQ(manager.slice_rate_mbps(0), 60.0);
  EXPECT_DOUBLE_EQ(manager.slice_rate_mbps(1), 20.0);
}

}  // namespace
}  // namespace edgeslice::transport
