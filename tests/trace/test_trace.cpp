#include "trace/trace.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace edgeslice::trace {
namespace {

TraceConfig small_config() {
  TraceConfig config;
  config.cells = 4;
  config.days = 3;
  config.intervals_per_day = 48;  // 30-minute bins for test speed
  config.mean_calls_per_interval = 40.0;
  return config;
}

TEST(TraceDataset, EntryCountMatchesConfig) {
  Rng rng(1);
  const TraceDataset trace(small_config(), rng);
  EXPECT_EQ(trace.entries().size(), 4u * 3u * 48u);
}

TEST(TraceDataset, SchemaFieldsPopulated) {
  Rng rng(1);
  const TraceDataset trace(small_config(), rng);
  const auto& e = trace.entries().front();
  EXPECT_LT(e.cell_id, 4u);
  EXPECT_GE(e.calls, 0.0);
  EXPECT_GE(e.sms, 0.0);
  EXPECT_GE(e.internet, 0.0);
}

TEST(TraceDataset, InternetVolumeExceedsCalls) {
  Rng rng(2);
  const TraceDataset trace(small_config(), rng);
  double calls = 0.0;
  double internet = 0.0;
  for (const auto& e : trace.entries()) {
    calls += e.calls;
    internet += e.internet;
  }
  EXPECT_GT(internet, calls);
}

TEST(TraceDataset, DailyProfileIsDiurnal) {
  Rng rng(3);
  TraceConfig config = small_config();
  config.days = 7;
  config.noise = 0.05;
  const TraceDataset trace(config, rng);
  for (std::size_t cell = 0; cell < config.cells; ++cell) {
    const auto profile = trace.average_daily_calls(cell, 24);
    ASSERT_EQ(profile.size(), 24u);
    // Busy evening hours should dominate the deep night (phase shifts of
    // up to ~2h keep 18-21h inside the evening peak).
    const double night = profile[3] + profile[4];
    const double evening = profile[18] + profile[19] + profile[20];
    EXPECT_GT(evening, night) << "cell " << cell;
  }
}

TEST(TraceDataset, NormalizedProfilePeaksAtRequestedValue) {
  Rng rng(4);
  const TraceDataset trace(small_config(), rng);
  const auto profile = trace.normalized_daily_profile(0, 24, 10.0);
  const double max_value = *std::max_element(profile.begin(), profile.end());
  EXPECT_NEAR(max_value, 10.0, 1e-9);
  for (double v : profile) EXPECT_GE(v, 0.0);
}

TEST(TraceDataset, CellsDiffer) {
  Rng rng(5);
  const TraceDataset trace(small_config(), rng);
  const auto a = trace.average_daily_calls(0, 24);
  const auto b = trace.average_daily_calls(1, 24);
  EXPECT_NE(a, b);
}

TEST(TraceDataset, BadCellThrows) {
  Rng rng(6);
  const TraceDataset trace(small_config(), rng);
  EXPECT_THROW(trace.average_daily_calls(99, 24), std::out_of_range);
  EXPECT_THROW(trace.average_daily_calls(0, 0), std::invalid_argument);
}

TEST(TraceDataset, DegenerateConfigThrows) {
  Rng rng(7);
  TraceConfig config = small_config();
  config.cells = 0;
  EXPECT_THROW(TraceDataset(config, rng), std::invalid_argument);
}

TEST(TraceDataset, DeterministicPerSeed) {
  TraceConfig config = small_config();
  Rng a(11);
  Rng b(11);
  const TraceDataset ta(config, a);
  const TraceDataset tb(config, b);
  EXPECT_EQ(ta.entries().size(), tb.entries().size());
  EXPECT_DOUBLE_EQ(ta.entries()[100].calls, tb.entries()[100].calls);
}

}  // namespace
}  // namespace edgeslice::trace
