#include "trace/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace edgeslice::trace {
namespace {

std::vector<TraceEntry> sample_entries() {
  return {
      {0, 0, 10.0, 4.0, 30.0},
      {0, 1, 12.0, 5.0, 31.0},
      {1, 0, 3.0, 1.0, 9.0},
  };
}

TEST(TraceCsv, RoundTrip) {
  std::stringstream stream;
  write_trace_csv(stream, sample_entries());
  const auto loaded = read_trace_csv(stream);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[1].cell_id, 0u);
  EXPECT_EQ(loaded[1].interval, 1u);
  EXPECT_DOUBLE_EQ(loaded[1].calls, 12.0);
  EXPECT_DOUBLE_EQ(loaded[2].internet, 9.0);
}

TEST(TraceCsv, GeneratedDatasetRoundTrips) {
  TraceConfig config;
  config.cells = 2;
  config.days = 1;
  config.intervals_per_day = 24;
  Rng rng(1);
  const TraceDataset dataset(config, rng);
  std::stringstream stream;
  write_trace_csv(stream, dataset.entries());
  const auto loaded = read_trace_csv(stream);
  EXPECT_EQ(loaded.size(), dataset.entries().size());
  EXPECT_DOUBLE_EQ(loaded[7].calls, dataset.entries()[7].calls);
}

TEST(TraceCsv, ReadsCrlfLineEndings) {
  // Files exported on Windows (or via some spreadsheet tools) terminate
  // rows with \r\n; the trailing \r must not corrupt the last field or
  // the header comparison.
  std::stringstream stream(
      "cell_id,interval,calls,sms,internet\r\n"
      "0,0,10,4,30\r\n"
      "1,2,3,1,9\r\n");
  const auto loaded = read_trace_csv(stream);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[0].internet, 30.0);
  EXPECT_DOUBLE_EQ(loaded[1].internet, 9.0);
  EXPECT_EQ(loaded[1].cell_id, 1u);
}

TEST(TraceCsv, ReadsUtf8BomHeader) {
  std::stringstream stream(
      "\xEF\xBB\xBF"
      "cell_id,interval,calls,sms,internet\n"
      "0,0,10,4,30\n");
  const auto loaded = read_trace_csv(stream);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0].calls, 10.0);
}

TEST(TraceCsv, ReadsBomWithCrlf) {
  std::stringstream stream(
      "\xEF\xBB\xBF"
      "cell_id,interval,calls,sms,internet\r\n"
      "7,3,1,2,3\r\n"
      "\r\n");  // blank CRLF line is still skipped
  const auto loaded = read_trace_csv(stream);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].cell_id, 7u);
  EXPECT_EQ(loaded[0].interval, 3u);
}

TEST(TraceCsv, RoundTripSurvivesCrlfRewrite) {
  // write -> convert to CRLF -> read must reproduce the original data.
  std::stringstream clean;
  write_trace_csv(clean, sample_entries());
  std::string text = clean.str();
  std::string crlf;
  for (char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  std::stringstream dirty("\xEF\xBB\xBF" + crlf);
  const auto loaded = read_trace_csv(dirty);
  const auto expected = sample_entries();
  ASSERT_EQ(loaded.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(loaded[i].cell_id, expected[i].cell_id);
    EXPECT_DOUBLE_EQ(loaded[i].calls, expected[i].calls);
    EXPECT_DOUBLE_EQ(loaded[i].internet, expected[i].internet);
  }
}

TEST(TraceCsv, BomOnlyStrippedFromFirstLine) {
  // A BOM sequence inside a data row is not whitespace; it must still be
  // rejected as a malformed number rather than silently stripped.
  std::stringstream stream(
      "cell_id,interval,calls,sms,internet\n"
      "\xEF\xBB\xBF"
      "1,2,3,4,5\n");
  EXPECT_THROW(read_trace_csv(stream), std::runtime_error);
}

TEST(TraceCsv, RejectsBadHeader) {
  std::stringstream stream("wrong,header\n1,2,3,4,5\n");
  EXPECT_THROW(read_trace_csv(stream), std::runtime_error);
}

TEST(TraceCsv, RejectsShortRow) {
  std::stringstream stream("cell_id,interval,calls,sms,internet\n1,2,3\n");
  EXPECT_THROW(read_trace_csv(stream), std::runtime_error);
}

TEST(TraceCsv, RejectsNonNumeric) {
  std::stringstream stream("cell_id,interval,calls,sms,internet\n1,2,abc,4,5\n");
  EXPECT_THROW(read_trace_csv(stream), std::runtime_error);
}

TEST(TraceCsv, SkipsBlankLines) {
  std::stringstream stream("cell_id,interval,calls,sms,internet\n1,2,3,4,5\n\n");
  EXPECT_EQ(read_trace_csv(stream).size(), 1u);
}

TEST(DailyCallProfile, ReducesExternalEntries) {
  // Two days of 4-bin "days": bins should average across days.
  std::vector<TraceEntry> entries;
  for (std::size_t day = 0; day < 2; ++day) {
    for (std::size_t bin = 0; bin < 4; ++bin) {
      entries.push_back(TraceEntry{0, day * 4 + bin,
                                   static_cast<double>(bin * 10 + day), 0.0, 0.0});
    }
  }
  const auto profile = daily_call_profile(entries, 0, 4, 4);
  ASSERT_EQ(profile.size(), 4u);
  EXPECT_DOUBLE_EQ(profile[0], 0.5);   // mean(0, 1)
  EXPECT_DOUBLE_EQ(profile[3], 30.5);  // mean(30, 31)
}

TEST(DailyCallProfile, MatchesDatasetReduction) {
  TraceConfig config;
  config.cells = 1;
  config.days = 2;
  config.intervals_per_day = 48;
  Rng rng(5);
  const TraceDataset dataset(config, rng);
  const auto via_dataset = dataset.average_daily_calls(0, 24);
  const auto via_entries = daily_call_profile(dataset.entries(), 0, 24, 48);
  ASSERT_EQ(via_dataset.size(), via_entries.size());
  for (std::size_t b = 0; b < 24; ++b) {
    EXPECT_NEAR(via_dataset[b], via_entries[b], 1e-9) << "bin " << b;
  }
}

}  // namespace
}  // namespace edgeslice::trace
