#include "trace/arrivals.h"

#include <gtest/gtest.h>

namespace edgeslice::trace {
namespace {

TEST(PoissonArrivals, MeanMatchesRate) {
  PoissonArrivals arrivals(10.0);  // the prototype's rate (Sec. VII-C)
  Rng rng(1);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(arrivals.next(rng));
  EXPECT_NEAR(total / n, 10.0, 0.2);
}

TEST(PoissonArrivals, NegativeRateThrows) {
  EXPECT_THROW(PoissonArrivals(-1.0), std::invalid_argument);
  PoissonArrivals arrivals(1.0);
  EXPECT_THROW(arrivals.set_rate(-2.0), std::invalid_argument);
}

TEST(PoissonArrivals, SetRateTakesEffect) {
  PoissonArrivals arrivals(0.0);
  Rng rng(2);
  EXPECT_EQ(arrivals.next(rng), 0u);
  arrivals.set_rate(5.0);
  double total = 0.0;
  for (int i = 0; i < 5000; ++i) total += static_cast<double>(arrivals.next(rng));
  EXPECT_NEAR(total / 5000.0, 5.0, 0.3);
}

TEST(ProfileArrivals, FollowsProfileShape) {
  ProfileArrivals arrivals({1.0, 10.0}, 2.0);
  EXPECT_DOUBLE_EQ(arrivals.mean_at(0), 2.0);
  EXPECT_DOUBLE_EQ(arrivals.mean_at(1), 20.0);
  EXPECT_DOUBLE_EQ(arrivals.mean_at(2), 2.0);  // wraps
}

TEST(ProfileArrivals, EmpiricalMeansTrackProfile) {
  ProfileArrivals arrivals({2.0, 8.0}, 1.0);
  Rng rng(3);
  double low = 0.0;
  double high = 0.0;
  for (int i = 0; i < 5000; ++i) {
    low += static_cast<double>(arrivals.next(0, rng));
    high += static_cast<double>(arrivals.next(1, rng));
  }
  EXPECT_NEAR(low / 5000.0, 2.0, 0.2);
  EXPECT_NEAR(high / 5000.0, 8.0, 0.3);
}

TEST(ProfileArrivals, ValidatesInput) {
  EXPECT_THROW(ProfileArrivals({}), std::invalid_argument);
  EXPECT_THROW(ProfileArrivals({1.0, -2.0}), std::invalid_argument);
}

TEST(ProfileArrivals, PeriodReported) {
  ProfileArrivals arrivals({1, 2, 3});
  EXPECT_EQ(arrivals.period(), 3u);
}

}  // namespace
}  // namespace edgeslice::trace
