#include "trace/diurnal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace edgeslice::trace {
namespace {

TEST(Diurnal, NightTroughBelowEveningPeak) {
  const double night = diurnal_activity(4.0);
  const double evening = diurnal_activity(19.0);
  EXPECT_LT(night, 0.3 * evening);
}

TEST(Diurnal, TwoPeaksExist) {
  // Morning (~11h) and evening (~19h) are local maxima vs the 15h saddle.
  const double morning = diurnal_activity(11.0);
  const double saddle = diurnal_activity(15.0);
  const double evening = diurnal_activity(19.0);
  EXPECT_GT(morning, saddle);
  EXPECT_GT(evening, saddle);
}

TEST(Diurnal, EveningIsGlobalPeak) {
  double best_hour = 0.0;
  double best = -1.0;
  for (double h = 0.0; h < 24.0; h += 0.25) {
    const double a = diurnal_activity(h);
    if (a > best) {
      best = a;
      best_hour = h;
    }
  }
  EXPECT_NEAR(best_hour, 19.0, 1.5);
  EXPECT_NEAR(best, 1.0, 0.15);
}

TEST(Diurnal, NonNegativeEverywhere) {
  for (double h = 0.0; h < 24.0; h += 0.1) {
    EXPECT_GE(diurnal_activity(h), 0.0);
  }
}

TEST(Diurnal, WrapsAroundMidnight) {
  EXPECT_NEAR(diurnal_activity(0.0), diurnal_activity(24.0), 1e-9);
}

TEST(CellProfile, SampledScalesAreHeavyTailed) {
  Rng rng(1);
  std::vector<double> scales;
  for (int i = 0; i < 2000; ++i) scales.push_back(sample_cell_profile(rng).scale);
  std::sort(scales.begin(), scales.end());
  const double median = scales[scales.size() / 2];
  const double p99 = scales[static_cast<std::size_t>(scales.size() * 0.99)];
  EXPECT_NEAR(median, 1.0, 0.15);  // log-normal with mu = 0
  EXPECT_GT(p99, 2.5 * median);    // heavy tail
}

TEST(CellProfile, PhaseShiftsTheCurve) {
  CellProfile cell;
  cell.phase_hours = 2.0;
  EXPECT_NEAR(cell_activity(cell, 21.0), diurnal_activity(19.0), 1e-9);
}

TEST(CellProfile, ScaleMultiplies) {
  CellProfile cell;
  cell.scale = 3.0;
  EXPECT_NEAR(cell_activity(cell, 12.0), 3.0 * diurnal_activity(12.0), 1e-9);
}

TEST(CellProfile, SamplingIsDeterministicPerSeed) {
  Rng a(5);
  Rng b(5);
  const auto pa = sample_cell_profile(a);
  const auto pb = sample_cell_profile(b);
  EXPECT_DOUBLE_EQ(pa.scale, pb.scale);
  EXPECT_DOUBLE_EQ(pa.phase_hours, pb.phase_hours);
}

}  // namespace
}  // namespace edgeslice::trace
