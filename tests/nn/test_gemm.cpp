// GEMM backend dispatch and kernel equivalence (ctest label: nn).
//
// Own executable: these tests pin and reset the process-global GEMM
// backend, which would leak into any suite sharing the process.
//
// Contracts under test (src/nn/gemm.h, DESIGN.md):
//   - dispatch: mode strings parse per kGemmModeNames; an explicit
//     "avx2" pin on an unsupported CPU throws; unknown strings throw.
//   - accuracy: the Avx2 backend agrees with Scalar within the
//     documented bound (one rounding per fused term: |diff| bounded by
//     ~2 k eps of the absolute-value dot product).
//   - determinism: each backend is batch-invariant bit for bit — row r
//     of an m-row product equals the 1-row product of row r — which is
//     what makes cross-agent batched inference observation-neutral.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/gemm.h"
#include "nn/matrix.h"
#include "nn/mlp.h"
#include "rl/batched_actor.h"

namespace edgeslice::nn {
namespace {

/// Pins nothing itself; restores whatever backend was active so test
/// order cannot leak a pin into later tests.
class GemmTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = active_gemm_backend(); }
  void TearDown() override { set_gemm_backend(saved_); }

 private:
  GemmBackend saved_ = GemmBackend::Scalar;
};

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data()) v = rng.normal();
  return m;
}

/// Shapes the tiled kernels must get right: empty, single row/column,
/// register-block sizes (4 rows, 8 columns), one past a block, and
/// sizes straddling the k-tile (scalar 64, avx2 128).
struct Shape {
  std::size_t m, k, n;
};
const Shape kShapes[] = {
    {0, 3, 4},  {3, 0, 4},   {3, 4, 0},   {1, 1, 1},   {1, 7, 1},
    {7, 1, 7},  {1, 129, 8}, {4, 64, 8},  {5, 65, 9},  {8, 128, 16},
    {3, 130, 17}, {10, 27, 5}, {13, 200, 11},
};

TEST_F(GemmTest, ModeStringsParsePerKGemmModeNames) {
  set_gemm_backend("scalar");
  EXPECT_EQ(active_gemm_backend(), GemmBackend::Scalar);
  set_gemm_backend("auto");
  EXPECT_EQ(active_gemm_backend(), cpu_supports_avx2_fma() ? GemmBackend::Avx2
                                                           : GemmBackend::Scalar);
  if (cpu_supports_avx2_fma()) {
    set_gemm_backend("avx2");
    EXPECT_EQ(active_gemm_backend(), GemmBackend::Avx2);
  } else {
    EXPECT_THROW(set_gemm_backend("avx2"), std::invalid_argument);
    EXPECT_THROW(set_gemm_backend(GemmBackend::Avx2), std::invalid_argument);
  }
  EXPECT_THROW(set_gemm_backend("sse"), std::invalid_argument);
  EXPECT_THROW(set_gemm_backend("AVX2"), std::invalid_argument);
  // A set-but-empty EDGESLICE_GEMM resolves exactly like an unset one.
  set_gemm_backend("scalar");
  set_gemm_backend("");
  EXPECT_EQ(active_gemm_backend(), cpu_supports_avx2_fma() ? GemmBackend::Avx2
                                                           : GemmBackend::Scalar);
}

TEST_F(GemmTest, BackendNamesMatchModeList) {
  EXPECT_STREQ(gemm_backend_name(GemmBackend::Scalar), kGemmModeNames[0]);
  EXPECT_STREQ(gemm_backend_name(GemmBackend::Avx2), kGemmModeNames[1]);
}

TEST_F(GemmTest, ResetRereadsEnvironment) {
  // EDGESLICE_GEMM is unset under ctest, so a reset must resolve "auto".
  ASSERT_EQ(std::getenv("EDGESLICE_GEMM"), nullptr);
  set_gemm_backend("scalar");
  reset_gemm_backend();
  EXPECT_EQ(active_gemm_backend(), cpu_supports_avx2_fma() ? GemmBackend::Avx2
                                                           : GemmBackend::Scalar);
}

/// |scalar - avx2| for one output element, bounded by the rounding slack
/// of k fused vs unfused multiply-adds over the absolute-value dot.
void expect_within_ulp_bound(const Matrix& s, const Matrix& v, const Matrix& abs_dot,
                             std::size_t k, const char* label) {
  constexpr double eps = std::numeric_limits<double>::epsilon();
  ASSERT_EQ(s.rows(), v.rows()) << label;
  ASSERT_EQ(s.cols(), v.cols()) << label;
  for (std::size_t i = 0; i < s.rows(); ++i) {
    for (std::size_t j = 0; j < s.cols(); ++j) {
      const double bound = 2.0 * static_cast<double>(k) * eps *
                           (abs_dot(i, j) + std::abs(s(i, j)));
      EXPECT_NEAR(s(i, j), v(i, j), bound)
          << label << " element (" << i << ", " << j << ")";
    }
  }
}

TEST_F(GemmTest, Avx2MatchesScalarWithinBoundOnAllEntryPoints) {
  if (!cpu_supports_avx2_fma()) GTEST_SKIP() << "no AVX2+FMA on this CPU";
  Rng rng(7);
  for (const Shape& shape : kShapes) {
    const Matrix a = random_matrix(shape.m, shape.k, rng);
    const Matrix b = random_matrix(shape.k, shape.n, rng);
    const Matrix bt = random_matrix(shape.n, shape.k, rng);
    Matrix abs_a = a;
    Matrix abs_b = b;
    for (auto& x : abs_a.data()) x = std::abs(x);
    for (auto& x : abs_b.data()) x = std::abs(x);
    set_gemm_backend(GemmBackend::Scalar);
    const Matrix abs_dot = abs_a.matmul(abs_b);
    const Matrix nn_s = a.matmul(b);
    const Matrix at_s = a.transposed_matmul(a.matmul(b));
    const Matrix bt_s = a.matmul_transposed(bt);
    set_gemm_backend(GemmBackend::Avx2);
    const Matrix nn_v = a.matmul(b);
    const Matrix at_v = a.transposed_matmul(a.matmul(b));
    const Matrix bt_v = a.matmul_transposed(bt);
    expect_within_ulp_bound(nn_s, nn_v, abs_dot, shape.k, "matmul");
    // at/bt reuse the same per-element chain; the nn abs-dot bound is the
    // right scale for a, and looser checks would mask a broken kernel, so
    // compare those against a recomputed elementwise bound too.
    constexpr double eps = std::numeric_limits<double>::epsilon();
    ASSERT_EQ(at_s.rows(), at_v.rows());
    for (std::size_t i = 0; i < at_s.rows(); ++i) {
      for (std::size_t j = 0; j < at_s.cols(); ++j) {
        const double scale = 4.0 * static_cast<double>(shape.m * shape.k) * eps;
        EXPECT_NEAR(at_s(i, j), at_v(i, j),
                    scale * (1.0 + std::abs(at_s(i, j)) +
                             static_cast<double>(shape.k)))
            << "transposed_matmul (" << i << ", " << j << ")";
      }
    }
    for (std::size_t i = 0; i < bt_s.rows(); ++i) {
      for (std::size_t j = 0; j < bt_s.cols(); ++j) {
        const double scale = 4.0 * static_cast<double>(shape.k) * eps;
        EXPECT_NEAR(bt_s(i, j), bt_v(i, j),
                    scale * (1.0 + std::abs(bt_s(i, j)) +
                             static_cast<double>(shape.k)))
            << "matmul_transposed (" << i << ", " << j << ")";
      }
    }
  }
}

TEST_F(GemmTest, EachBackendIsBatchInvariantBitForBit) {
  Rng rng(11);
  std::vector<GemmBackend> backends{GemmBackend::Scalar};
  if (cpu_supports_avx2_fma()) backends.push_back(GemmBackend::Avx2);
  for (const GemmBackend backend : backends) {
    set_gemm_backend(backend);
    for (const Shape& shape : kShapes) {
      if (shape.m == 0) continue;
      const Matrix a = random_matrix(shape.m, shape.k, rng);
      const Matrix b = random_matrix(shape.k, shape.n, rng);
      const Matrix bt = random_matrix(shape.n, shape.k, rng);
      const Matrix full_nn = a.matmul(b);
      const Matrix full_bt = a.matmul_transposed(bt);
      for (std::size_t r = 0; r < shape.m; ++r) {
        Matrix row(1, shape.k);
        row.set_row(0, a.row_vector(r));
        EXPECT_EQ(full_nn.row_vector(r), row.matmul(b).row_vector(0))
            << gemm_backend_name(backend) << " matmul row " << r;
        EXPECT_EQ(full_bt.row_vector(r), row.matmul_transposed(bt).row_vector(0))
            << gemm_backend_name(backend) << " matmul_transposed row " << r;
      }
    }
  }
}

TEST_F(GemmTest, TransposedMatmulMatchesMaterializedTransposeBitForBit) {
  // Both sides fold ascending k per element, so they agree exactly —
  // under either backend.
  Rng rng(13);
  std::vector<GemmBackend> backends{GemmBackend::Scalar};
  if (cpu_supports_avx2_fma()) backends.push_back(GemmBackend::Avx2);
  for (const GemmBackend backend : backends) {
    set_gemm_backend(backend);
    const Matrix a = random_matrix(37, 11, rng);
    const Matrix b = random_matrix(37, 9, rng);
    EXPECT_EQ(a.transposed_matmul(b).data(), a.transpose().matmul(b).data())
        << gemm_backend_name(backend);
  }
}

TEST_F(GemmTest, AddTransposedMatmulAccumulates) {
  Rng rng(17);
  const Matrix a = random_matrix(19, 6, rng);
  const Matrix b = random_matrix(19, 8, rng);
  for (const char* mode : {"scalar", "auto"}) {
    set_gemm_backend(mode);
    Matrix acc(6, 8, 0.0);
    acc.add_transposed_matmul(a, b);
    EXPECT_EQ(acc.data(), a.transposed_matmul(b).data()) << mode;
    Matrix wrong(5, 8, 0.0);
    EXPECT_THROW(wrong.add_transposed_matmul(a, b), std::invalid_argument);
  }
}

TEST_F(GemmTest, MatmulIntoMatchesMatmulAndReusesStorage) {
  Rng rng(19);
  const Matrix a = random_matrix(9, 33, rng);
  const Matrix b = random_matrix(33, 14, rng);
  Matrix out;
  a.matmul_into(b, out);
  EXPECT_EQ(out.data(), a.matmul(b).data());
  const double* storage = out.data().data();
  a.matmul_into(b, out);  // same shape: no reallocation, same bits
  EXPECT_EQ(out.data().data(), storage);
  EXPECT_EQ(out.data(), a.matmul(b).data());
}

TEST_F(GemmTest, MatmulIntoRejectsMismatchAndAliasing) {
  Rng rng(23);
  Matrix a = random_matrix(4, 5, rng);
  const Matrix b = random_matrix(5, 3, rng);
  const Matrix bad = random_matrix(6, 3, rng);
  Matrix out;
  EXPECT_THROW(a.matmul_into(bad, out), std::invalid_argument);
  EXPECT_THROW(a.matmul_into(b, a), std::invalid_argument);
  Matrix b_alias = b;
  EXPECT_THROW(a.matmul_into(b_alias, b_alias), std::invalid_argument);
}

TEST(HconcatTest, MatchesPasteColumnsAndElementwiseLayout) {
  Rng rng(29);
  const Matrix a = random_matrix(6, 4, rng);
  const Matrix b = random_matrix(6, 7, rng);
  const Matrix joined = hconcat(a, b);
  ASSERT_EQ(joined.rows(), 6u);
  ASSERT_EQ(joined.cols(), 11u);
  Matrix pasted(6, 11);
  pasted.paste_columns(0, a);
  pasted.paste_columns(4, b);
  EXPECT_EQ(joined.data(), pasted.data());
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(joined(i, j), a(i, j));
    for (std::size_t j = 0; j < 7; ++j) EXPECT_EQ(joined(i, 4 + j), b(i, j));
  }
  const Matrix short_b = random_matrix(5, 2, rng);
  EXPECT_THROW(hconcat(a, short_b), std::invalid_argument);
}

TEST(ActivateAssignTest, BitIdenticalToActivateForEveryActivation) {
  Rng rng(31);
  const Activation all[] = {Activation::Identity, Activation::Relu,
                            Activation::LeakyRelu, Activation::Tanh,
                            Activation::Sigmoid,  Activation::Softplus};
  for (const Activation a : all) {
    Matrix z = random_matrix(7, 13, rng);
    const Matrix expected = activate(z, a);
    activate_assign(z, a);
    EXPECT_EQ(z.data(), expected.data())
        << "activation " << static_cast<int>(a);
  }
}

TEST_F(GemmTest, MlpInferIntoBitIdenticalToInferUnderBothBackends) {
  Rng rng(37);
  Mlp net({9, 32, 32, 4}, Activation::LeakyRelu, Activation::Sigmoid, rng);
  std::vector<GemmBackend> backends{GemmBackend::Scalar};
  if (cpu_supports_avx2_fma()) backends.push_back(GemmBackend::Avx2);
  for (const GemmBackend backend : backends) {
    set_gemm_backend(backend);
    const Matrix x = random_matrix(5, 9, rng);
    std::vector<Matrix> workspace;
    const Matrix& out = net.infer_into(x, workspace);
    EXPECT_EQ(out.data(), net.infer(x).data()) << gemm_backend_name(backend);
    const double* storage = workspace.back().data().data();
    net.infer_into(x, workspace);  // steady state: no reallocation
    EXPECT_EQ(workspace.back().data().data(), storage);
  }
}

TEST_F(GemmTest, BatchedActorRowsBitIdenticalToPerAgentInference) {
  Rng rng(41);
  Mlp net({6, 24, 24, 3}, Activation::LeakyRelu, Activation::Sigmoid, rng);
  std::vector<GemmBackend> backends{GemmBackend::Scalar};
  if (cpu_supports_avx2_fma()) backends.push_back(GemmBackend::Avx2);
  for (const GemmBackend backend : backends) {
    set_gemm_backend(backend);
    rl::BatchedActor actor(net);
    constexpr std::size_t kRows = 10;
    std::vector<std::vector<double>> states;
    actor.begin(kRows);
    for (std::size_t r = 0; r < kRows; ++r) {
      states.push_back(rng.normals(6));
      actor.set_state(r, states.back());
    }
    actor.infer();
    for (std::size_t r = 0; r < kRows; ++r) {
      EXPECT_EQ(actor.action(r), net.infer_vector(states[r]))
          << gemm_backend_name(backend) << " row " << r;
    }
  }
}

TEST(BatchedActorTest, RejectsBadRowsAndStates) {
  Rng rng(43);
  Mlp net({4, 8, 2}, Activation::LeakyRelu, Activation::Sigmoid, rng);
  rl::BatchedActor actor(net);
  EXPECT_THROW(actor.action(0), std::out_of_range);
  actor.begin(2);
  EXPECT_THROW(actor.set_state(0, {1.0, 2.0}), std::out_of_range);
  EXPECT_THROW(actor.set_state(2, std::vector<double>(4, 0.0)), std::out_of_range);
  actor.set_state(0, std::vector<double>(4, 0.5));
  actor.set_state(1, std::vector<double>(4, -0.5));
  actor.infer();
  EXPECT_THROW(actor.action(2), std::out_of_range);
  EXPECT_EQ(actor.rows(), 2u);
}

}  // namespace
}  // namespace edgeslice::nn
