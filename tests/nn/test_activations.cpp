#include "nn/activations.h"

#include <gtest/gtest.h>

#include <cmath>

namespace edgeslice::nn {
namespace {

class ActivationGradientTest : public ::testing::TestWithParam<Activation> {};

// Property: analytic derivative matches central finite difference.
TEST_P(ActivationGradientTest, MatchesFiniteDifference) {
  const Activation a = GetParam();
  const double eps = 1e-6;
  for (double z : {-2.0, -0.5, 0.3, 1.7, 4.0}) {
    const double fd = (activate(z + eps, a) - activate(z - eps, a)) / (2 * eps);
    EXPECT_NEAR(activate_grad(z, a), fd, 1e-5) << activation_name(a) << " at z=" << z;
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationGradientTest,
                         ::testing::Values(Activation::Identity, Activation::Relu,
                                           Activation::LeakyRelu, Activation::Tanh,
                                           Activation::Sigmoid, Activation::Softplus),
                         [](const auto& param_info) {
                           return activation_name(param_info.param);
                         });

TEST(Activations, ReluClampsNegative) {
  EXPECT_DOUBLE_EQ(activate(-3.0, Activation::Relu), 0.0);
  EXPECT_DOUBLE_EQ(activate(2.0, Activation::Relu), 2.0);
}

TEST(Activations, LeakyReluSlope) {
  EXPECT_DOUBLE_EQ(activate(-1.0, Activation::LeakyRelu), -kLeakyReluSlope);
  EXPECT_DOUBLE_EQ(activate_grad(-1.0, Activation::LeakyRelu), kLeakyReluSlope);
  EXPECT_DOUBLE_EQ(activate_grad(1.0, Activation::LeakyRelu), 1.0);
}

TEST(Activations, SigmoidRange) {
  EXPECT_NEAR(activate(0.0, Activation::Sigmoid), 0.5, 1e-12);
  EXPECT_GT(activate(-30.0, Activation::Sigmoid), 0.0);
  EXPECT_LT(activate(30.0, Activation::Sigmoid), 1.0 + 1e-12);
}

TEST(Activations, TanhOddSymmetry) {
  EXPECT_NEAR(activate(1.3, Activation::Tanh), -activate(-1.3, Activation::Tanh), 1e-12);
}

TEST(Activations, SoftplusLargeInputStable) {
  EXPECT_NEAR(activate(100.0, Activation::Softplus), 100.0, 1e-9);
  EXPECT_GT(activate(0.0, Activation::Softplus), 0.0);
}

TEST(Activations, MatrixFormMatchesScalar) {
  Matrix z{{-1.0, 0.0, 2.0}};
  const auto y = activate(z, Activation::Sigmoid);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(y(0, c), activate(z(0, c), Activation::Sigmoid));
  }
}

}  // namespace
}  // namespace edgeslice::nn
