#include "nn/matrix.h"

#include <gtest/gtest.h>

namespace edgeslice::nn {
namespace {

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, RowAndColumnFactories) {
  const auto r = Matrix::row({1, 2, 3});
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 3u);
  const auto c = Matrix::column({1, 2, 3});
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 1u);
}

TEST(Matrix, IdentityMatmulIsIdentity) {
  Matrix m{{1, 2}, {3, 4}};
  const auto i = Matrix::identity(2);
  const auto p = m.matmul(i);
  EXPECT_DOUBLE_EQ(p(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 4.0);
}

TEST(Matrix, MatmulKnownValues) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const auto c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a.matmul(b), std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const auto t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  const auto tt = t.transpose();
  EXPECT_DOUBLE_EQ(tt(1, 2), 6.0);
}

TEST(Matrix, ElementwiseOps) {
  Matrix a{{1, 2}};
  Matrix b{{3, 5}};
  EXPECT_DOUBLE_EQ((a + b)(0, 1), 7.0);
  EXPECT_DOUBLE_EQ((b - a)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.hadamard(b)(0, 1), 10.0);
  EXPECT_DOUBLE_EQ((a * 2.0)(0, 0), 2.0);
}

TEST(Matrix, CompoundOps) {
  Matrix a{{1, 2}};
  a += Matrix{{1, 1}};
  a -= Matrix{{0, 1}};
  a *= 3.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 6.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(1, 2);
  Matrix b(2, 1);
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(a.hadamard(b), std::invalid_argument);
}

TEST(Matrix, BroadcastBiasAdd) {
  Matrix x{{1, 2}, {3, 4}};
  const auto y = x.add_row_broadcast(Matrix{{10, 20}});
  EXPECT_DOUBLE_EQ(y(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(y(1, 1), 24.0);
}

TEST(Matrix, ColumnSums) {
  Matrix x{{1, 2}, {3, 4}};
  const auto s = x.column_sums();
  EXPECT_DOUBLE_EQ(s(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(s(0, 1), 6.0);
}

TEST(Matrix, MapAndTotal) {
  Matrix x{{1, -2}};
  const auto y = x.map([](double v) { return v * v; });
  EXPECT_DOUBLE_EQ(y(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(y.total(), 5.0);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix x{{3, 4}};
  EXPECT_DOUBLE_EQ(x.frobenius_norm(), 5.0);
}

TEST(Matrix, RowVectorAndSetRow) {
  Matrix x(2, 3);
  x.set_row(1, {7, 8, 9});
  const auto r = x.row_vector(1);
  EXPECT_EQ(r, (std::vector<double>{7, 8, 9}));
  EXPECT_THROW(x.set_row(2, {1, 2, 3}), std::out_of_range);
  EXPECT_THROW(x.set_row(0, {1}), std::out_of_range);
}

TEST(Matrix, SliceColumns) {
  Matrix x{{1, 2, 3}, {4, 5, 6}};
  const auto s = x.slice_columns(1, 3);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_DOUBLE_EQ(s(1, 0), 5.0);
  EXPECT_THROW(x.slice_columns(2, 4), std::out_of_range);
}

TEST(Matrix, HConcat) {
  Matrix a{{1}, {2}};
  Matrix b{{3, 4}, {5, 6}};
  const auto c = hconcat(a, b);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_DOUBLE_EQ(c(1, 2), 6.0);
  Matrix bad(3, 1);
  EXPECT_THROW(hconcat(a, bad), std::invalid_argument);
}

}  // namespace
}  // namespace edgeslice::nn
