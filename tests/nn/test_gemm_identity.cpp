// Whole-system bit-identity under GEMM backend pins (ctest label: nn).
//
// The determinism contract (DESIGN.md): a pinned GEMM backend is part of
// the experiment's reproducibility statement, and under any single pin
// the run_period trajectory is byte-identical across every execution
// shape — 1/2/4 pool threads, 0/2 worker processes, batched cross-agent
// inference on or off. The two backends produce different (each
// internally deterministic) streams, so trajectories may differ BETWEEN
// pins — what must never differ is anything under the SAME pin.
//
// Own executable (with test_gemm): pins the process-global backend.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/policies.h"
#include "core/system.h"
#include "core/training.h"
#include "env/service_model.h"
#include "ipc/supervisor.h"
#include "nn/gemm.h"
#include "rl/frozen.h"

namespace edgeslice::nn {
namespace {

constexpr std::size_t kRas = 4;
constexpr std::size_t kPeriods = 3;

std::vector<GemmBackend> testable_backends() {
  std::vector<GemmBackend> backends{GemmBackend::Scalar};
  if (cpu_supports_avx2_fma()) backends.push_back(GemmBackend::Avx2);
  return backends;
}

class GemmIdentityTest : public ::testing::Test {
 protected:
  void TearDown() override { reset_gemm_backend(); }
};

std::unique_ptr<env::RaEnvironment> make_env(Rng rng) {
  env::RaEnvironmentConfig config;  // 2 slices, T = 10
  return std::make_unique<env::RaEnvironment>(
      config,
      std::vector<env::AppProfile>{env::slice1_profile(), env::slice2_profile()},
      std::make_shared<env::DirectServiceModel>(env::prototype_capacity()),
      env::make_queue_power_perf(), rng);
}

std::shared_ptr<rl::FrozenActor> make_shared_actor(std::uint64_t seed) {
  Rng rng(seed);
  const auto probe = make_env(Rng(1));
  return std::make_shared<rl::FrozenActor>(
      Mlp({probe->state_dim(), 24, 24, probe->action_dim()},
          Activation::LeakyRelu, Activation::Sigmoid, rng));
}

struct SystemRun {
  std::vector<double> series;
  std::vector<core::IntervalRecord> records;
};

/// One deployment run: every RA a LearnedPolicy over one shared frozen
/// actor (the configuration batched inference actually groups).
SystemRun run_system(std::uint64_t seed, const std::shared_ptr<rl::Agent>& agent,
                     std::size_t threads, std::size_t workers, bool batched) {
  const Rng parent(seed);
  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  std::vector<std::unique_ptr<core::RaPolicy>> policies;
  std::vector<env::RaEnvironment*> env_ptrs;
  std::vector<core::RaPolicy*> policy_ptrs;
  for (std::size_t j = 0; j < kRas; ++j) {
    environments.push_back(make_env(parent.spawn(500 + j)));
    policies.push_back(std::make_unique<core::LearnedPolicy>(agent, /*learn=*/false));
    env_ptrs.push_back(environments.back().get());
    policy_ptrs.push_back(policies.back().get());
  }
  core::CoordinatorConfig coordinator;
  coordinator.slices = 2;
  coordinator.ras = kRas;
  core::SystemConfig config;
  config.batched_inference = batched;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    config.pool = pool.get();
  }
  std::unique_ptr<ipc::WorkerSupervisor> supervisor;
  if (workers > 0) {
    ipc::SupervisorConfig sup_config;
    sup_config.workers = workers;
    supervisor =
        std::make_unique<ipc::WorkerSupervisor>(env_ptrs, policy_ptrs, sup_config);
    supervisor->start();
    config.transport = supervisor.get();
  }
  core::EdgeSliceSystem system(env_ptrs, policy_ptrs, coordinator, config);
  system.run(kPeriods);
  SystemRun out;
  out.series = system.monitor().system_performance_series();
  out.records = system.monitor().records();
  return out;
}

void expect_identical(const SystemRun& a, const SystemRun& b, const std::string& label) {
  EXPECT_EQ(a.series, b.series) << label;
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (std::size_t r = 0; r < a.records.size(); ++r) {
    EXPECT_EQ(a.records[r].performance, b.records[r].performance)
        << label << " record " << r;
    EXPECT_EQ(a.records[r].action, b.records[r].action) << label << " record " << r;
    EXPECT_EQ(a.records[r].reward, b.records[r].reward) << label << " record " << r;
  }
}

TEST_F(GemmIdentityTest, TrajectoriesIdenticalAcrossThreadsUnderEachPin) {
  const auto agent = make_shared_actor(61);
  for (const GemmBackend backend : testable_backends()) {
    set_gemm_backend(backend);
    const SystemRun reference = run_system(71, agent, 1, 0, /*batched=*/true);
    for (const std::size_t threads : {2u, 4u}) {
      expect_identical(reference, run_system(71, agent, threads, 0, true),
                       std::string(gemm_backend_name(backend)) + " threads " +
                           std::to_string(threads));
    }
  }
}

TEST_F(GemmIdentityTest, TrajectoriesIdenticalAcrossWorkersUnderEachPin) {
  const auto agent = make_shared_actor(61);
  for (const GemmBackend backend : testable_backends()) {
    set_gemm_backend(backend);
    const SystemRun reference = run_system(73, agent, 1, 0, /*batched=*/true);
    expect_identical(reference, run_system(73, agent, 1, 2, true),
                     std::string(gemm_backend_name(backend)) + " workers 2");
  }
}

TEST_F(GemmIdentityTest, BatchedInferenceIsObservationNeutralUnderEachPin) {
  const auto agent = make_shared_actor(67);
  for (const GemmBackend backend : testable_backends()) {
    set_gemm_backend(backend);
    expect_identical(run_system(79, agent, 1, 0, /*batched=*/true),
                     run_system(79, agent, 1, 0, /*batched=*/false),
                     std::string(gemm_backend_name(backend)) + " batched vs not");
  }
}

/// Same forward pass as FrozenActor but with the batching contract
/// withheld: inference_actor() stays null, forcing validate_policy and
/// run_period down the per-agent act() path.
class UnbatchableActor final : public rl::Agent {
 public:
  explicit UnbatchableActor(Mlp actor) : actor_(std::move(actor)) {}
  std::vector<double> act(const std::vector<double>& state, bool) override {
    return actor_.infer_vector(state);
  }
  void observe(const std::vector<double>&, const std::vector<double>&, double,
               const std::vector<double>&, bool) override {}
  std::string name() const override { return "Unbatchable"; }
  std::size_t state_dim() const override { return actor_.in_dim(); }
  std::size_t action_dim() const override { return actor_.out_dim(); }
  std::size_t update_count() const override { return 0; }

 private:
  Mlp actor_;
};

TEST_F(GemmIdentityTest, ValidatePolicyScoresIdenticalBatchedOrNot) {
  for (const GemmBackend backend : testable_backends()) {
    set_gemm_backend(backend);
    const auto environment = make_env(Rng(83));
    Rng rng(89);
    Mlp actor({environment->state_dim(), 24, 24, environment->action_dim()},
              Activation::LeakyRelu, Activation::Sigmoid, rng);
    rl::FrozenActor frozen(actor);            // batched path in validate_policy
    UnbatchableActor unbatchable(actor);      // per-step act() path
    const double batched_score =
        core::validate_policy(frozen, *environment, 0.5, 40);
    const double unbatched_score =
        core::validate_policy(unbatchable, *environment, 0.5, 40);
    EXPECT_EQ(batched_score, unbatched_score) << gemm_backend_name(backend);
  }
}

}  // namespace
}  // namespace edgeslice::nn
