#include "nn/dense.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace edgeslice::nn {
namespace {

TEST(Dense, ForwardShape) {
  Rng rng(1);
  Dense layer(3, 5, Activation::Identity, rng);
  const auto y = layer.forward(Matrix(4, 3, 1.0));
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.cols(), 5u);
}

TEST(Dense, ForwardComputesAffine) {
  Rng rng(1);
  Dense layer(2, 1, Activation::Identity, rng);
  layer.weights() = Matrix{{2.0}, {3.0}};
  layer.bias() = Matrix{{1.0}};
  const auto y = layer.forward(Matrix{{1.0, 1.0}});
  EXPECT_DOUBLE_EQ(y(0, 0), 6.0);
}

TEST(Dense, InferMatchesForward) {
  Rng rng(3);
  Dense layer(4, 3, Activation::Tanh, rng);
  Matrix x(2, 4);
  Rng data(9);
  for (auto& v : x.data()) v = data.normal();
  const auto a = layer.forward(x);
  const auto b = layer.infer(x);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
  }
}

// Numerical gradient check of dL/dW, dL/db and dL/dX where L = sum(Y).
TEST(Dense, BackwardMatchesFiniteDifference) {
  Rng rng(5);
  Dense layer(3, 2, Activation::LeakyRelu, rng);
  Matrix x(2, 3);
  Rng data(17);
  for (auto& v : x.data()) v = data.normal();

  layer.zero_grad();
  layer.forward(x);
  const Matrix ones(2, 2, 1.0);
  const Matrix dx = layer.backward(ones);

  const double eps = 1e-6;
  const auto loss = [&](Dense& l, const Matrix& input) { return l.infer(input).total(); };

  for (std::size_t i = 0; i < layer.weights().size(); ++i) {
    const double original = layer.weights().data()[i];
    layer.weights().data()[i] = original + eps;
    const double up = loss(layer, x);
    layer.weights().data()[i] = original - eps;
    const double down = loss(layer, x);
    layer.weights().data()[i] = original;
    EXPECT_NEAR(layer.weight_grad().data()[i], (up - down) / (2 * eps), 1e-5)
        << "weight " << i;
  }
  for (std::size_t i = 0; i < layer.bias().size(); ++i) {
    const double original = layer.bias().data()[i];
    layer.bias().data()[i] = original + eps;
    const double up = loss(layer, x);
    layer.bias().data()[i] = original - eps;
    const double down = loss(layer, x);
    layer.bias().data()[i] = original;
    EXPECT_NEAR(layer.bias_grad().data()[i], (up - down) / (2 * eps), 1e-5) << "bias " << i;
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double original = x.data()[i];
    x.data()[i] = original + eps;
    const double up = loss(layer, x);
    x.data()[i] = original - eps;
    const double down = loss(layer, x);
    x.data()[i] = original;
    EXPECT_NEAR(dx.data()[i], (up - down) / (2 * eps), 1e-5) << "input " << i;
  }
}

TEST(Dense, GradientsAccumulateAcrossBackwardCalls) {
  Rng rng(7);
  Dense layer(2, 2, Activation::Identity, rng);
  const Matrix x(1, 2, 1.0);
  const Matrix g(1, 2, 1.0);
  layer.forward(x);
  layer.backward(g);
  const double once = layer.weight_grad()(0, 0);
  layer.forward(x);
  layer.backward(g);
  EXPECT_DOUBLE_EQ(layer.weight_grad()(0, 0), 2.0 * once);
  layer.zero_grad();
  EXPECT_DOUBLE_EQ(layer.weight_grad()(0, 0), 0.0);
}

TEST(Dense, InitializationIsSeedDependent) {
  Rng a(1);
  Rng b(1);
  Rng c(2);
  Dense la(4, 4, Activation::Relu, a);
  Dense lb(4, 4, Activation::Relu, b);
  Dense lc(4, 4, Activation::Relu, c);
  EXPECT_EQ(la.weights().data(), lb.weights().data());
  EXPECT_NE(la.weights().data(), lc.weights().data());
}

}  // namespace
}  // namespace edgeslice::nn
