#include "nn/adam.h"

#include <gtest/gtest.h>

#include <cmath>

namespace edgeslice::nn {
namespace {

TEST(Adam, AttachValidatesShapes) {
  Adam opt;
  Matrix p(2, 2);
  Matrix g(2, 3);
  EXPECT_THROW(opt.attach(&p, &g), std::invalid_argument);
  EXPECT_THROW(opt.attach(nullptr, &g), std::invalid_argument);
}

TEST(Adam, FirstStepMovesByLearningRate) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Adam opt(AdamConfig{.learning_rate = 0.1});
  Matrix p(1, 1, 5.0);
  Matrix g(1, 1, 2.0);
  opt.attach(&p, &g);
  opt.step();
  EXPECT_NEAR(p(0, 0), 5.0 - 0.1, 1e-6);
}

TEST(Adam, StepZeroesGradients) {
  Adam opt;
  Matrix p(1, 2, 0.0);
  Matrix g(1, 2, 1.0);
  opt.attach(&p, &g);
  opt.step();
  EXPECT_DOUBLE_EQ(g(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g(0, 1), 0.0);
}

TEST(Adam, MinimizesQuadratic) {
  // minimize (x - 3)^2 by feeding grad = 2(x-3).
  Adam opt(AdamConfig{.learning_rate = 0.05});
  Matrix x(1, 1, -4.0);
  Matrix g(1, 1, 0.0);
  opt.attach(&x, &g);
  for (int i = 0; i < 2000; ++i) {
    g(0, 0) = 2.0 * (x(0, 0) - 3.0);
    opt.step();
  }
  EXPECT_NEAR(x(0, 0), 3.0, 1e-3);
}

TEST(Adam, ScaleFlipsToAscent) {
  // maximize -(x-3)^2 with scale = -1 applied to the descent gradient.
  Adam opt(AdamConfig{.learning_rate = 0.05});
  Matrix x(1, 1, 0.0);
  Matrix g(1, 1, 0.0);
  opt.attach(&x, &g);
  for (int i = 0; i < 2000; ++i) {
    g(0, 0) = -2.0 * (x(0, 0) - 3.0);  // gradient of the objective
    opt.step(-1.0);                    // ascend
  }
  EXPECT_NEAR(x(0, 0), 3.0, 1e-3);
}

TEST(Adam, CountsSteps) {
  Adam opt;
  Matrix p(1, 1);
  Matrix g(1, 1);
  opt.attach(&p, &g);
  opt.step();
  opt.step();
  EXPECT_EQ(opt.step_count(), 2u);
}

TEST(Adam, LearningRateAdjustable) {
  Adam opt(AdamConfig{.learning_rate = 0.1});
  opt.set_learning_rate(0.0);
  Matrix p(1, 1, 1.0);
  Matrix g(1, 1, 5.0);
  opt.attach(&p, &g);
  opt.step();
  EXPECT_DOUBLE_EQ(p(0, 0), 1.0);
}

}  // namespace
}  // namespace edgeslice::nn
