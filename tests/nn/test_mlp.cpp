#include "nn/mlp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.h"

namespace edgeslice::nn {
namespace {

Mlp make_net(Rng& rng) {
  return Mlp({3, 8, 8, 2}, Activation::LeakyRelu, Activation::Identity, rng);
}

TEST(Mlp, RequiresAtLeastTwoSizes) {
  Rng rng(1);
  EXPECT_THROW(Mlp({4}, Activation::Relu, Activation::Identity, rng),
               std::invalid_argument);
}

TEST(Mlp, ShapesAndDims) {
  Rng rng(1);
  Mlp net = make_net(rng);
  EXPECT_EQ(net.in_dim(), 3u);
  EXPECT_EQ(net.out_dim(), 2u);
  EXPECT_EQ(net.layers().size(), 3u);
  const auto y = net.infer(Matrix(5, 3, 0.5));
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 2u);
}

TEST(Mlp, InferVectorMatchesInfer) {
  Rng rng(2);
  Mlp net = make_net(rng);
  const std::vector<double> x{0.1, -0.4, 0.9};
  const auto a = net.infer_vector(x);
  const auto b = net.infer(Matrix::row(x)).row_vector(0);
  EXPECT_EQ(a, b);
}

// Full-stack numerical gradient check: L = sum(net(x)).
TEST(Mlp, BackwardMatchesFiniteDifference) {
  Rng rng(3);
  Mlp net({2, 5, 3}, Activation::Tanh, Activation::Sigmoid, rng);
  Matrix x(3, 2);
  Rng data(4);
  for (auto& v : x.data()) v = data.normal();

  net.zero_grad();
  net.forward(x);
  net.backward(Matrix(3, 3, 1.0));
  const auto analytic = net.flat_gradients();

  const auto theta = net.flat_parameters();
  const double eps = 1e-6;
  for (std::size_t i = 0; i < theta.size(); i += 7) {  // sample every 7th param
    auto up = theta;
    auto down = theta;
    up[i] += eps;
    down[i] -= eps;
    net.set_flat_parameters(up);
    const double lu = net.infer(x).total();
    net.set_flat_parameters(down);
    const double ld = net.infer(x).total();
    net.set_flat_parameters(theta);
    EXPECT_NEAR(analytic[i], (lu - ld) / (2 * eps), 1e-5) << "param " << i;
  }
}

TEST(Mlp, LearnsLinearRegression) {
  // y = 2 x0 - x1; MSE descent should reach near-zero loss.
  Rng rng(5);
  Mlp net({2, 16, 1}, Activation::LeakyRelu, Activation::Identity, rng);
  Adam opt(AdamConfig{.learning_rate = 0.01});
  net.attach_to(opt);
  Rng data(6);
  double loss = 0.0;
  for (int step = 0; step < 3000; ++step) {
    Matrix x(16, 2);
    for (auto& v : x.data()) v = data.uniform(-1, 1);
    Matrix target(16, 1);
    for (std::size_t r = 0; r < 16; ++r) target(r, 0) = 2 * x(r, 0) - x(r, 1);
    const auto y = net.forward(x);
    Matrix grad(16, 1);
    loss = 0.0;
    for (std::size_t r = 0; r < 16; ++r) {
      const double e = y(r, 0) - target(r, 0);
      loss += e * e / 16.0;
      grad(r, 0) = 2.0 * e / 16.0;
    }
    net.backward(grad);
    opt.step();
  }
  EXPECT_LT(loss, 1e-3);
}

TEST(Mlp, SoftUpdateInterpolates) {
  Rng rng(7);
  Mlp a({2, 4, 1}, Activation::Relu, Activation::Identity, rng);
  Mlp b({2, 4, 1}, Activation::Relu, Activation::Identity, rng);
  const double wa = a.layers()[0].weights()(0, 0);
  const double wb = b.layers()[0].weights()(0, 0);
  b.soft_update_from(a, 0.25);
  EXPECT_NEAR(b.layers()[0].weights()(0, 0), 0.25 * wa + 0.75 * wb, 1e-12);
}

TEST(Mlp, CopyParametersMakesIdentical) {
  Rng rng(8);
  Mlp a({2, 4, 1}, Activation::Relu, Activation::Identity, rng);
  Mlp b({2, 4, 1}, Activation::Relu, Activation::Identity, rng);
  b.copy_parameters_from(a);
  const std::vector<double> x{0.3, -0.7};
  EXPECT_EQ(a.infer_vector(x), b.infer_vector(x));
}

TEST(Mlp, SoftUpdateArchitectureMismatchThrows) {
  Rng rng(9);
  Mlp a({2, 4, 1}, Activation::Relu, Activation::Identity, rng);
  Mlp b({2, 4, 4, 1}, Activation::Relu, Activation::Identity, rng);
  EXPECT_THROW(b.soft_update_from(a, 0.5), std::invalid_argument);
}

TEST(Mlp, FlatParameterRoundTrip) {
  Rng rng(10);
  Mlp net = make_net(rng);
  auto theta = net.flat_parameters();
  EXPECT_EQ(theta.size(), net.parameter_count());
  for (auto& v : theta) v += 0.5;
  net.set_flat_parameters(theta);
  EXPECT_EQ(net.flat_parameters(), theta);
  theta.pop_back();
  EXPECT_THROW(net.set_flat_parameters(theta), std::invalid_argument);
}

TEST(Mlp, SaveLoadRoundTripsExactly) {
  Rng rng(21);
  Mlp net({3, 7, 2}, Activation::LeakyRelu, Activation::Sigmoid, rng);
  std::stringstream stream;
  net.save(stream);
  const Mlp loaded = Mlp::load(stream);
  EXPECT_EQ(loaded.in_dim(), 3u);
  EXPECT_EQ(loaded.out_dim(), 2u);
  EXPECT_EQ(loaded.layers()[0].activation(), Activation::LeakyRelu);
  EXPECT_EQ(loaded.layers()[1].activation(), Activation::Sigmoid);
  const std::vector<double> x{0.31, -0.87, 1.44};
  EXPECT_EQ(net.infer_vector(x), loaded.infer_vector(x));  // bit-exact (hex floats)
}

TEST(Mlp, LoadRejectsGarbage) {
  std::stringstream bad("not an mlp");
  EXPECT_THROW(Mlp::load(bad), std::runtime_error);
  std::stringstream truncated("mlp v1\n3\n2 4 1\n2 4\n0x1p+0\n");
  EXPECT_THROW(Mlp::load(truncated), std::runtime_error);
}

// Regression: Mlp::load once parsed parameters with `in >> double`, so a
// token like "banana" silently read as 0.0 and NaN/inf weights loaded
// "successfully" — the deployed policy then produced NaN allocations with
// no hint of why. The loader now rejects both, naming the layer and
// offset that broke.
TEST(Mlp, LoadRejectsNonFiniteParameterNamingLayer) {
  Rng rng(31);
  Mlp net({2, 3, 1}, Activation::Relu, Activation::Identity, rng);
  std::stringstream stream;
  net.save(stream);
  std::string text = stream.str();
  // Replace the final parameter line (the output layer's bias) with inf.
  const std::size_t last_line = text.rfind("0x", text.size() - 2);
  ASSERT_NE(last_line, std::string::npos);
  text.replace(last_line, text.size() - 1 - last_line, "inf");
  std::stringstream bad(text);
  try {
    Mlp::load(bad);
    FAIL() << "non-finite parameter accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("non-finite parameter"), std::string::npos) << what;
    EXPECT_NE(what.find("layer"), std::string::npos) << what;
  }
}

TEST(Mlp, LoadRejectsMalformedParameterToken) {
  Rng rng(32);
  Mlp net({2, 3, 1}, Activation::Relu, Activation::Identity, rng);
  std::stringstream stream;
  net.save(stream);
  std::string text = stream.str();
  const std::size_t last_line = text.rfind("0x", text.size() - 2);
  ASSERT_NE(last_line, std::string::npos);
  text.replace(last_line, text.size() - 1 - last_line, "banana");
  std::stringstream bad(text);
  try {
    Mlp::load(bad);
    FAIL() << "malformed parameter accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("malformed parameter"), std::string::npos)
        << e.what();
  }
}

TEST(Mlp, LoadRejectsTruncationNamingOffset) {
  Rng rng(33);
  Mlp net({2, 3, 1}, Activation::Relu, Activation::Identity, rng);
  std::stringstream stream;
  net.save(stream);
  std::string text = stream.str();
  const std::size_t last_line = text.rfind("0x", text.size() - 2);
  const std::size_t line_start = text.rfind('\n', last_line);
  ASSERT_NE(line_start, std::string::npos);
  text.resize(line_start + 1);  // drop the final parameter line entirely
  std::stringstream bad(text);
  try {
    Mlp::load(bad);
    FAIL() << "truncated parameters accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated parameters"), std::string::npos)
        << e.what();
  }
}

TEST(Mlp, LoadRejectsHostileHeaderBeforeAllocating) {
  // 64 layers of width 2^20 would be a ~4 TiB allocation if the caps did
  // not fire first.
  std::stringstream huge("mlp v1\n3\n1048577 2 1\n2 4\n");
  EXPECT_THROW(Mlp::load(huge), std::runtime_error);
  std::stringstream many("mlp v1\n65\n");
  EXPECT_THROW(Mlp::load(many), std::runtime_error);
}

TEST(Mlp, CopyConstructorClones) {
  Rng rng(11);
  Mlp a = make_net(rng);
  Mlp b = a;  // Dense/Matrix are value types: this is a deep clone
  const std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_EQ(a.infer_vector(x), b.infer_vector(x));
  b.layers()[0].weights()(0, 0) += 1.0;
  EXPECT_NE(a.infer_vector(x), b.infer_vector(x));
}

}  // namespace
}  // namespace edgeslice::nn
