// Telemetry server tests, driven through real loopback sockets: golden
// Prometheus exposition, the JSON endpoints, liveness while a system is
// mid-run, and the atomic snapshot writers.
#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace_span.h"
#include "core/system.h"
#include "env/service_model.h"
#include "obs/event_log.h"

namespace edgeslice::obs {
namespace {

class TelemetryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    edgeslice::global_metrics().clear();
    edgeslice::global_tracer().clear();
    global_event_log().clear();
  }
  void TearDown() override {
    set_metrics_enabled(true);
    edgeslice::global_metrics().clear();
    edgeslice::global_tracer().clear();
    global_event_log().clear();
  }
};

struct HttpResponse {
  int status = 0;
  std::string body;
};

/// Minimal loopback HTTP/1.0 client: one GET, read to EOF.
HttpResponse http_get(std::uint16_t port, const std::string& path) {
  HttpResponse response;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return response;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return response;
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  // "HTTP/1.0 NNN ..." then headers then CRLFCRLF then body.
  if (raw.size() > 12) response.status = std::atoi(raw.c_str() + 9);
  const std::size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) response.body = raw.substr(split + 4);
  return response;
}

std::unique_ptr<TelemetryServer> start_server() {
  auto server = std::make_unique<TelemetryServer>();  // port 0 = ephemeral
  if (!server->start()) return nullptr;
  return server;
}

TEST_F(TelemetryServerTest, MetricsEndpointServesGoldenPrometheusText) {
  auto& metrics = edgeslice::global_metrics();
  metrics.counter("bus.rcm_sent").add(12);
  metrics.gauge("system.crashed_ras").set(1.5);
  auto& histogram = metrics.histogram("bus.rcm_latency_periods");
  for (int i = 0; i < 4; ++i) histogram.observe(0.0);

  auto server = start_server();
  ASSERT_NE(server, nullptr);
  const HttpResponse response = http_get(server->port(), "/metrics");
  EXPECT_EQ(response.status, 200);
  // Golden body for the controlled registry: dots sanitized to '_',
  // counters/gauges as single samples, histograms as summaries. The
  // server's own request counter (exactly 1: this scrape) is part of the
  // deterministic output.
  const std::string expected =
      "# TYPE bus_rcm_sent counter\n"
      "bus_rcm_sent 12\n"
      "# TYPE telemetry_requests counter\n"
      "telemetry_requests 1\n"
      "# TYPE system_crashed_ras gauge\n"
      "system_crashed_ras 1.5\n"
      "# TYPE bus_rcm_latency_periods summary\n"
      "bus_rcm_latency_periods{quantile=\"0.5\"} 0\n"
      "bus_rcm_latency_periods{quantile=\"0.9\"} 0\n"
      "bus_rcm_latency_periods{quantile=\"0.99\"} 0\n"
      "bus_rcm_latency_periods_sum 0\n"
      "bus_rcm_latency_periods_count 4\n";
  EXPECT_EQ(response.body, expected);
}

TEST_F(TelemetryServerTest, EveryEndpointAnswersWhileASystemIsRunning) {
  auto server = start_server();
  ASSERT_NE(server, nullptr);

  // A live orchestration loop in the background, long enough to overlap
  // all the scrapes below.
  const auto model =
      std::make_shared<env::DirectServiceModel>(env::prototype_capacity());
  env::RaEnvironmentConfig env_cfg;
  env_cfg.intervals_per_period = 4;
  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  std::vector<std::unique_ptr<core::RaPolicy>> policies;
  for (std::size_t j = 0; j < 2; ++j) {
    environments.push_back(std::make_unique<env::RaEnvironment>(
        env_cfg,
        std::vector<env::AppProfile>{env::slice1_profile(), env::slice2_profile()},
        model, env::make_queue_power_perf(), Rng(100 + j)));
    policies.push_back(std::make_unique<core::TaroPolicy>());
  }
  core::CoordinatorConfig coordinator;
  coordinator.slices = 2;
  coordinator.ras = 2;
  std::vector<env::RaEnvironment*> env_ptrs{environments[0].get(),
                                            environments[1].get()};
  std::vector<core::RaPolicy*> policy_ptrs{policies[0].get(), policies[1].get()};
  core::EdgeSliceSystem system(env_ptrs, policy_ptrs, coordinator);
  std::thread runner([&system] { system.run(50); });

  const HttpResponse health = http_get(server->port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  const HttpResponse prometheus = http_get(server->port(), "/metrics");
  EXPECT_EQ(prometheus.status, 200);

  const HttpResponse events = http_get(server->port(), "/events.json");
  EXPECT_EQ(events.status, 200);
  EXPECT_EQ(events.body.front(), '[');

  const HttpResponse spans = http_get(server->port(), "/spans.json");
  EXPECT_EQ(spans.status, 200);
  EXPECT_EQ(spans.body.front(), '{');

  runner.join();
  // A scrape after the run sees the final period count.
  const HttpResponse after = http_get(server->port(), "/metrics");
  EXPECT_NE(after.body.find("system_periods 50\n"), std::string::npos);
}

TEST_F(TelemetryServerTest, UnknownPathIs404AndNonGetIs405) {
  auto server = start_server();
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(http_get(server->port(), "/nope").status, 404);

  // A non-GET request to a real resource is 405 with an Allow header, not
  // 400 — the request parsed fine, the method is just unsupported.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char request[] = "POST /metrics HTTP/1.0\r\n\r\n";
  ::send(fd, request, sizeof(request) - 1, 0);
  std::string raw;
  char buf[256];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  ASSERT_GT(raw.size(), 12u);
  EXPECT_EQ(std::atoi(raw.c_str() + 9), 405);
  EXPECT_NE(raw.find("Allow: GET\r\n"), std::string::npos);
}

TEST_F(TelemetryServerTest, StopIsIdempotentAndRestartable) {
  auto server = start_server();
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(server->running());
  const std::uint16_t port = server->port();
  EXPECT_GT(port, 0);
  server->stop();
  server->stop();
  EXPECT_FALSE(server->running());
  EXPECT_TRUE(server->start());  // rebinds (a fresh ephemeral port is fine)
  EXPECT_TRUE(server->running());
  EXPECT_EQ(http_get(server->port(), "/healthz").status, 200);
}

TEST_F(TelemetryServerTest, SnapshotWritesAtomicallyViaTmpAndRename) {
  edgeslice::global_metrics().counter("system.periods").add(3);
  global_event_log().record([] {
    Event e;
    e.kind = EventKind::RcmDropped;
    e.period = 1;
    return e;
  }());
  const std::string path = ::testing::TempDir() + "obs_snapshot.json";
  std::remove(path.c_str());
  ASSERT_TRUE(write_observability_snapshot(path));
  // The temp file was renamed away, and the document holds all 3 sections.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  const std::string text = content.str();
  EXPECT_NE(text.find("\"metrics\": "), std::string::npos);
  EXPECT_NE(text.find("\"spans\": "), std::string::npos);
  EXPECT_NE(text.find("\"events\": "), std::string::npos);
  EXPECT_NE(text.find("\"rcm.dropped\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TelemetryServerTest, RollingSnapshotWriterTracksPeriodCounter) {
  const std::string path = ::testing::TempDir() + "obs_rolling.json";
  std::remove(path.c_str());
  {
    RollingSnapshotWriter writer(path, /*interval_periods=*/2, /*poll_ms=*/5);
    auto& periods = edgeslice::global_metrics().counter("system.periods");
    for (int i = 0; i < 6; ++i) {
      periods.add();
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
    }
    writer.stop();
    // At least the final stop() snapshot; usually rolling writes too (not
    // asserted — the writer thread may be starved on a loaded 1-core box).
    EXPECT_GE(writer.snapshots_written(), 1u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"system.periods\": 6"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace edgeslice::obs
