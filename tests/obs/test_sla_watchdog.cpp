// SLA watchdog tests: violation accounting, the EWMA anomaly score's
// rise/decay, metric publication, and flight-recorder events.
#include "obs/sla_watchdog.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/metrics.h"
#include "obs/event_log.h"

namespace edgeslice::obs {
namespace {

class SlaWatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    edgeslice::global_metrics().clear();
    global_event_log().clear();
  }
  void TearDown() override {
    set_metrics_enabled(true);
    edgeslice::global_metrics().clear();
    global_event_log().clear();
  }
};

TEST_F(SlaWatchdogTest, CountsViolationsPerSlice) {
  SlaWatchdog watchdog({SloSpec{-50.0, ""}, SloSpec{-50.0, ""}});
  watchdog.evaluate(0, {-40.0, -60.0});  // slice 1 violates
  watchdog.evaluate(1, {-55.0, -45.0});  // slice 0 violates
  watchdog.evaluate(2, {-10.0, -10.0});  // healthy
  EXPECT_EQ(watchdog.periods_evaluated(), 3u);
  EXPECT_EQ(watchdog.violations(0), 1u);
  EXPECT_EQ(watchdog.violations(1), 1u);
  EXPECT_EQ(watchdog.total_violations(), 2u);
  EXPECT_DOUBLE_EQ(watchdog.violation_rate(0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(watchdog.violation_rate(1), 1.0 / 3.0);
}

TEST_F(SlaWatchdogTest, ExactFloorIsNotAViolation) {
  // Same 1e-9 tolerance the coordinator's sla_satisfied() uses.
  SlaWatchdog watchdog({SloSpec{-50.0, ""}});
  watchdog.evaluate(0, {-50.0});
  EXPECT_EQ(watchdog.total_violations(), 0u);
  watchdog.evaluate(1, {-50.0 - 1e-6});
  EXPECT_EQ(watchdog.total_violations(), 1u);
}

TEST_F(SlaWatchdogTest, FromUminBuildsOneSpecPerSlice) {
  const SlaWatchdog watchdog = SlaWatchdog::from_u_min({-50.0, -20.0, 0.0});
  ASSERT_EQ(watchdog.slice_count(), 3u);
  EXPECT_DOUBLE_EQ(watchdog.spec(0).u_min, -50.0);
  EXPECT_DOUBLE_EQ(watchdog.spec(1).u_min, -20.0);
  EXPECT_DOUBLE_EQ(watchdog.spec(2).u_min, 0.0);
}

TEST_F(SlaWatchdogTest, AnomalyScoreRisesUnderBreachAndDecaysAfterRecovery) {
  SlaWatchdogConfig config;
  config.anomaly_alpha = 0.5;
  SlaWatchdog watchdog({SloSpec{-50.0, ""}}, config);
  EXPECT_DOUBLE_EQ(watchdog.anomaly_score(0), 0.0);
  // Sustained breach of depth 25 -> normalized shortfall 25/50 = 0.5.
  watchdog.evaluate(0, {-75.0});
  EXPECT_DOUBLE_EQ(watchdog.anomaly_score(0), 0.25);  // 0 + 0.5*(0.5-0)
  watchdog.evaluate(1, {-75.0});
  EXPECT_DOUBLE_EQ(watchdog.anomaly_score(0), 0.375);
  const double peak = watchdog.anomaly_score(0);
  // Recovery: score decays geometrically toward zero.
  watchdog.evaluate(2, {-10.0});
  EXPECT_DOUBLE_EQ(watchdog.anomaly_score(0), peak * 0.5);
  watchdog.evaluate(3, {-10.0});
  EXPECT_DOUBLE_EQ(watchdog.anomaly_score(0), peak * 0.25);
}

TEST_F(SlaWatchdogTest, PublishesMetricsAndEmitsViolationEvents) {
  SlaWatchdog watchdog({SloSpec{-50.0, ""}, SloSpec{-50.0, "urllc"}});
  watchdog.evaluate(9, {-70.0, -30.0});
  auto& metrics = edgeslice::global_metrics();
  EXPECT_EQ(metrics.counter("sla.violations").value(), 1u);
  EXPECT_EQ(metrics.counter("sla.violations.slice0").value(), 1u);
  EXPECT_DOUBLE_EQ(metrics.gauge("sla.violation_rate.slice0").value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("sla.margin.slice0").value(), -20.0);
  // Named slices export under their name, not the index.
  EXPECT_DOUBLE_EQ(metrics.gauge("sla.margin.urllc").value(), 20.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("sla.violation_rate.urllc").value(), 0.0);

  const auto events = global_event_log().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::SlaViolation);
  EXPECT_EQ(events[0].period, 9u);
  EXPECT_EQ(events[0].slice, 0u);
  EXPECT_DOUBLE_EQ(events[0].value, 20.0);  // shortfall
}

TEST_F(SlaWatchdogTest, InternalCountersWorkWithMetricsDisabled) {
  // The registry/event emissions no-op when telemetry is off, but the
  // watchdog's own accounting (used by the chaos bench's cross-check)
  // keeps working.
  SlaWatchdog watchdog({SloSpec{-50.0, ""}});
  set_metrics_enabled(false);
  watchdog.evaluate(0, {-80.0});
  set_metrics_enabled(true);
  EXPECT_EQ(watchdog.total_violations(), 1u);
  EXPECT_EQ(edgeslice::global_metrics().counter("sla.violations").value(), 0u);
  EXPECT_TRUE(global_event_log().snapshot().empty());
}

TEST_F(SlaWatchdogTest, ResetClearsAccounting) {
  SlaWatchdog watchdog({SloSpec{-50.0, ""}});
  watchdog.evaluate(0, {-80.0});
  watchdog.reset();
  EXPECT_EQ(watchdog.periods_evaluated(), 0u);
  EXPECT_EQ(watchdog.total_violations(), 0u);
  EXPECT_DOUBLE_EQ(watchdog.anomaly_score(0), 0.0);
  EXPECT_DOUBLE_EQ(watchdog.violation_rate(0), 0.0);
}

TEST_F(SlaWatchdogTest, RejectsBadConfigurations) {
  EXPECT_THROW(SlaWatchdog({}), std::invalid_argument);
  SlaWatchdogConfig bad;
  bad.anomaly_alpha = 0.0;
  EXPECT_THROW(SlaWatchdog({SloSpec{}}, bad), std::invalid_argument);
  bad.anomaly_alpha = 1.5;
  EXPECT_THROW(SlaWatchdog({SloSpec{}}, bad), std::invalid_argument);
  SlaWatchdog watchdog({SloSpec{}});
  EXPECT_THROW(watchdog.evaluate(0, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace edgeslice::obs
