// Flight-recorder tests: ordering, wraparound, concurrency (the tsan
// preset runs these), JSONL exposition, and the crash-dump path (forked
// subprocesses that die by SIGABRT / std::terminate).
#include "obs/event_log.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace edgeslice::obs {
namespace {

class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override { set_metrics_enabled(true); }
  void TearDown() override { set_metrics_enabled(true); }
};

Event make_event(EventKind kind, std::size_t period, std::size_t ra,
                 double value = 0.0) {
  Event e;
  e.kind = kind;
  e.period = period;
  e.ra = ra;
  e.value = value;
  return e;
}

TEST_F(EventLogTest, RecordsInOrderWithSequentialSeq) {
  EventLog log(16);
  for (std::size_t p = 0; p < 5; ++p) {
    log.record(make_event(EventKind::RcmDropped, p, p % 2));
  }
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].period, i);
    EXPECT_EQ(events[i].kind, EventKind::RcmDropped);
  }
  EXPECT_EQ(log.recorded(), 5u);
}

TEST_F(EventLogTest, RingKeepsOnlyTheMostRecentWindow) {
  EventLog log(8);
  for (std::size_t i = 0; i < 20; ++i) {
    log.record(make_event(EventKind::RclDropped, i, 0, static_cast<double>(i)));
  }
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first window of the last 8 appends: seq 12..19.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_DOUBLE_EQ(events[i].value, static_cast<double>(12 + i));
  }
  EXPECT_EQ(log.recorded(), 20u);
}

TEST_F(EventLogTest, StampsCurrentPeriodOntoUnlabeledEvents) {
  EventLog log(8);
  log.set_period(7);
  Event e;
  e.kind = EventKind::CoordinatorReject;  // writer does not know the period
  log.record(e);
  Event labeled = make_event(EventKind::SlaViolation, 3, Event::kNone);
  log.record(labeled);
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].period, 7u);   // filled from set_period
  EXPECT_EQ(events[1].period, 3u);   // explicit label wins
}

TEST_F(EventLogTest, DisabledMetricsMakeRecordANoOp) {
  EventLog log(8);
  set_metrics_enabled(false);
  log.record(make_event(EventKind::RcmDropped, 0, 0));
  set_metrics_enabled(true);
  EXPECT_EQ(log.recorded(), 0u);
  EXPECT_TRUE(log.snapshot().empty());
}

TEST_F(EventLogTest, ClearDropsEventsButKeepsNothingStale) {
  EventLog log(4);
  log.record(make_event(EventKind::RcmDropped, 0, 0));
  log.clear();
  EXPECT_TRUE(log.snapshot().empty());
  log.record(make_event(EventKind::RclDropped, 1, 1));
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::RclDropped);
}

TEST_F(EventLogTest, KindNamesAndFaultClassification) {
  EXPECT_STREQ(event_kind_name(EventKind::RcmDropped), "rcm.dropped");
  EXPECT_STREQ(event_kind_name(EventKind::SlaViolation), "sla.violation");
  EXPECT_STREQ(event_kind_name(EventKind::FaultRaCrash), "fault.ra_crash");
  EXPECT_TRUE(event_kind_is_fault(EventKind::RcmDropped));
  EXPECT_TRUE(event_kind_is_fault(EventKind::FaultComputeSlowdown));
  EXPECT_FALSE(event_kind_is_fault(EventKind::SlaViolation));
  EXPECT_FALSE(event_kind_is_fault(EventKind::ValidationCheckpoint));
}

TEST_F(EventLogTest, JsonlEmitsOneObjectPerLineWithNullsForUnknownFields) {
  EventLog log(8);
  log.record(make_event(EventKind::RcmDelayed, 4, 1, 2.0));
  Event partial;
  partial.kind = EventKind::CoordinatorReject;
  partial.value = 3.0;
  log.record(partial);
  std::ostringstream out;
  log.write_jsonl(out);
  const std::string text = out.str();
  // Two lines, each a complete object.
  std::istringstream lines(text);
  std::string line;
  std::vector<std::string> collected;
  while (std::getline(lines, line)) collected.push_back(line);
  ASSERT_EQ(collected.size(), 2u);
  EXPECT_NE(collected[0].find("\"kind\": \"rcm.delayed\""), std::string::npos);
  EXPECT_NE(collected[0].find("\"period\": 4"), std::string::npos);
  EXPECT_NE(collected[0].find("\"ra\": 1"), std::string::npos);
  EXPECT_NE(collected[0].find("\"interval\": null"), std::string::npos);
  EXPECT_NE(collected[1].find("\"kind\": \"coordinator.reject\""), std::string::npos);
  EXPECT_NE(collected[1].find("\"ra\": null"), std::string::npos);
}

TEST_F(EventLogTest, JsonArrayBracketsTheSameObjects) {
  EventLog log(8);
  log.record(make_event(EventKind::RcmDropped, 0, 0));
  std::ostringstream out;
  log.write_json_array(out);
  const std::string text = out.str();
  EXPECT_EQ(text.front(), '[');
  EXPECT_EQ(text.back(), ']');
  EXPECT_NE(text.find("\"kind\": \"rcm.dropped\""), std::string::npos);

  EventLog empty(4);
  std::ostringstream none;
  empty.write_json_array(none);
  EXPECT_EQ(none.str(), "[]");
}

TEST_F(EventLogTest, ConcurrentWritersNeverTearAndKeepAllEvents) {
  // 4 writers x 2000 appends on a ring big enough to hold everything:
  // every event must survive, with all per-writer payloads intact. The
  // tsan preset runs this against the seqlock protocol.
  EventLog log(8192);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&log, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        log.record(make_event(EventKind::RcmDropped, static_cast<std::size_t>(i),
                              static_cast<std::size_t>(w),
                              static_cast<double>(w * kPerWriter + i)));
      }
    });
  }
  // Concurrent reader: snapshots must always be seq-ordered and untorn
  // (payload consistent with the writer that produced the seq).
  std::atomic<bool> done{false};
  std::thread reader([&log, &done] {
    while (!done.load(std::memory_order_acquire)) {
      const auto events = log.snapshot();
      for (std::size_t i = 1; i < events.size(); ++i) {
        ASSERT_LT(events[i - 1].seq, events[i].seq);
      }
      for (const auto& e : events) {
        // value encodes (writer, i); ra must match the writer.
        const auto writer = static_cast<std::size_t>(e.value) / kPerWriter;
        ASSERT_EQ(e.ra, writer);
      }
    }
  });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kWriters * kPerWriter));
  std::vector<int> per_writer(kWriters, 0);
  for (const auto& e : events) {
    ASSERT_LT(e.ra, static_cast<std::size_t>(kWriters));
    ++per_writer[e.ra];
  }
  for (int w = 0; w < kWriters; ++w) EXPECT_EQ(per_writer[w], kPerWriter);
}

TEST_F(EventLogTest, ConcurrentWritersOnATinyRingStayConsistent) {
  // Heavy lapping: 4 writers x 500 appends on a 16-slot ring. The reader
  // must only ever see untorn slots in seq order.
  EventLog log(16);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 500;
  std::atomic<bool> done{false};
  std::thread reader([&log, &done] {
    while (!done.load(std::memory_order_acquire)) {
      const auto events = log.snapshot();
      ASSERT_LE(events.size(), 16u);
      for (std::size_t i = 1; i < events.size(); ++i) {
        ASSERT_LT(events[i - 1].seq, events[i].seq);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&log, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        log.record(make_event(EventKind::RclDropped, static_cast<std::size_t>(i),
                              static_cast<std::size_t>(w)));
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(log.recorded(), static_cast<std::uint64_t>(kWriters * kPerWriter));
  EXPECT_EQ(log.snapshot().size(), 16u);
}

/// Fork, run `in_child` (which must kill the process), and return the
/// child's wait status.
template <typename Fn>
int run_dying_child(Fn in_child) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    in_child();
    ::_exit(0);  // not reached when in_child dies as intended
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

/// Every line must parse as a flat JSON object with the recorder's keys.
void expect_valid_jsonl(const std::string& path, std::size_t expected_events) {
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing dump " << path;
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"seq\": "), std::string::npos);
    EXPECT_NE(line.find("\"kind\": \""), std::string::npos);
    EXPECT_NE(line.find("\"value\": "), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, expected_events);
}

TEST_F(EventLogTest, FatalSignalDumpsCompleteJsonl) {
  const std::string path = ::testing::TempDir() + "event_log_sigabrt.jsonl";
  std::remove(path.c_str());
  const int status = run_dying_child([&path] {
    set_crash_dump_path(path);
    for (std::size_t i = 0; i < 100; ++i) {
      global_event_log().record(
          make_event(EventKind::FaultRaCrash, i, 0, static_cast<double>(i)));
    }
    ::raise(SIGABRT);
  });
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);  // disposition restored + re-raised
  expect_valid_jsonl(path, 100);
  std::remove(path.c_str());
}

TEST_F(EventLogTest, TerminateHandlerDumpsCompleteJsonl) {
  const std::string path = ::testing::TempDir() + "event_log_terminate.jsonl";
  std::remove(path.c_str());
  const int status = run_dying_child([&path] {
    set_crash_dump_path(path);
    for (std::size_t i = 0; i < 70; ++i) {
      global_event_log().record(make_event(EventKind::RcmDropped, i, 1));
    }
    std::terminate();
  });
  ASSERT_TRUE(WIFSIGNALED(status));
  expect_valid_jsonl(path, 70);
  std::remove(path.c_str());
}

TEST_F(EventLogTest, CrashDumpPathIsStoredAndClearable) {
  // Manage the path in a child so the parent test process never has crash
  // handlers installed (gtest death-test machinery aside, EXPECT_DEATH-free
  // suites should not mutate global signal dispositions).
  const int status = run_dying_child([] {
    set_crash_dump_path("/tmp/x.jsonl");
    if (crash_dump_path() != "/tmp/x.jsonl") ::_exit(1);
    set_crash_dump_path("");
    if (!crash_dump_path().empty()) ::_exit(2);
    ::_exit(42);
  });
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 42);
}

}  // namespace
}  // namespace edgeslice::obs
