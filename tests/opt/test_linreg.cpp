#include "opt/linreg.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace edgeslice::opt {
namespace {

TEST(SolveLinearSystem, KnownSolution) {
  // 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
  nn::Matrix a{{2, 1}, {1, -1}};
  const auto x = solve_linear_system(a, {5, 1});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinearSystem, NeedsPivoting) {
  // First pivot is 0; partial pivoting must swap rows.
  nn::Matrix a{{0, 1}, {1, 0}};
  const auto x = solve_linear_system(a, {3, 7});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, SingularThrows) {
  nn::Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(solve_linear_system(a, {1, 2}), std::runtime_error);
}

TEST(SolveLinearSystem, ShapeMismatchThrows) {
  nn::Matrix a(2, 3);
  EXPECT_THROW(solve_linear_system(a, {1, 2}), std::invalid_argument);
}

TEST(FitLinear, RecoversExactLine) {
  // y = 3 x0 - 2 x1 + 5 on noiseless data.
  nn::Matrix x{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 3}};
  std::vector<double> y;
  for (std::size_t r = 0; r < x.rows(); ++r) y.push_back(3 * x(r, 0) - 2 * x(r, 1) + 5);
  const auto model = fit_linear(x, y);
  EXPECT_NEAR(model.coefficients[0], 3.0, 1e-6);
  EXPECT_NEAR(model.coefficients[1], -2.0, 1e-6);
  EXPECT_NEAR(model.intercept, 5.0, 1e-6);
  EXPECT_NEAR(r_squared(model, x, y), 1.0, 1e-9);
}

TEST(FitLinear, NoisyDataStillClose) {
  Rng rng(3);
  const std::size_t n = 200;
  nn::Matrix x(n, 1);
  std::vector<double> y(n);
  for (std::size_t r = 0; r < n; ++r) {
    x(r, 0) = rng.uniform(-5, 5);
    y[r] = 2.0 * x(r, 0) + 1.0 + rng.normal(0, 0.1);
  }
  const auto model = fit_linear(x, y);
  EXPECT_NEAR(model.coefficients[0], 2.0, 0.05);
  EXPECT_NEAR(model.intercept, 1.0, 0.05);
  EXPECT_GT(r_squared(model, x, y), 0.99);
}

TEST(FitLinear, PredictValidatesFeatureCount) {
  nn::Matrix x{{1, 2}, {3, 4}, {5, 6}};
  const auto model = fit_linear(x, {1, 2, 3});
  EXPECT_THROW(model.predict({1.0}), std::invalid_argument);
}

TEST(FitLinear, EmptyThrows) {
  nn::Matrix x(0, 2);
  EXPECT_THROW(fit_linear(x, {}), std::invalid_argument);
}

TEST(FitLinear, DegenerateNeighborhoodIsStable) {
  // All samples share the same x: ridge keeps the solve non-singular.
  nn::Matrix x{{0.5}, {0.5}, {0.5}};
  const auto model = fit_linear(x, {1.0, 2.0, 3.0}, 1e-6);
  EXPECT_NEAR(model.predict({0.5}), 2.0, 0.1);
}

TEST(FitLinear, GridCellInterpolation) {
  // The paper's use case: adjacent 10%-grid actions -> local plane.
  nn::Matrix x{{0.1, 0.3, 0.2}, {0.1, 0.4, 0.2}, {0.2, 0.3, 0.2}, {0.2, 0.4, 0.2},
               {0.1, 0.3, 0.3}, {0.1, 0.4, 0.3}, {0.2, 0.3, 0.3}, {0.2, 0.4, 0.3}};
  std::vector<double> y;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    y.push_back(10.0 / (x(r, 0) + 0.1) + 5.0 / (x(r, 1) + 0.1));
  }
  const auto model = fit_linear(x, y);
  // Prediction at the cell centre should land between corner values.
  const double p = model.predict({0.15, 0.35, 0.25});
  const auto [lo, hi] = std::minmax_element(y.begin(), y.end());
  EXPECT_GT(p, *lo - 1e-9);
  EXPECT_LT(p, *hi + 1e-9);
}

TEST(RSquared, ZeroForMeanPredictor) {
  nn::Matrix x{{1}, {2}, {3}};
  LinearModel mean_only;
  mean_only.coefficients = {0.0};
  mean_only.intercept = 2.0;  // mean of y
  const double r2 = r_squared(mean_only, x, {1, 2, 3});
  EXPECT_NEAR(r2, 0.0, 1e-9);
}

}  // namespace
}  // namespace edgeslice::opt
