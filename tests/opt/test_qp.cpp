#include "opt/qp.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "opt/projection.h"

namespace edgeslice::opt {
namespace {

// The iterative QP solver must agree with the closed-form projection —
// this cross-validation replaces the paper's CVXPY dependency.
TEST(Qp, MatchesClosedFormProjection) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const auto c = rng.normals(3, -20.0, 30.0);
    const double bound = rng.uniform(-80.0, 20.0);
    const auto closed = project_halfspace_sum_ge(c, bound);
    const auto iterative = solve_projection_qp(c, bound);
    EXPECT_TRUE(iterative.converged);
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_NEAR(iterative.z[i], closed[i], 1e-5) << "trial " << trial;
    }
  }
}

TEST(Qp, FeasibleInputConvergesImmediately) {
  const auto result = solve_projection_qp({5.0, 5.0}, 3.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.objective, 0.0, 1e-9);
}

TEST(Qp, ObjectiveIsSquaredDistance) {
  const auto result = solve_projection_qp({0.0, 0.0}, 2.0);
  // Projection moves each coordinate by 1 -> distance^2 = 2.
  EXPECT_NEAR(result.objective, 2.0, 1e-6);
}

TEST(Qp, BoxConstrainedStaysInBox) {
  QpConfig config;
  config.box_constrained = true;
  config.box_lo = 0.0;
  config.box_hi = 1.0;
  const auto result = solve_projection_qp({-3.0, 5.0, 0.4}, 1.0, config);
  for (double v : result.z) {
    EXPECT_GE(v, -1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
  const double total = std::accumulate(result.z.begin(), result.z.end(), 0.0);
  EXPECT_GE(total, 1.0 - 1e-6);
}

TEST(Qp, EmptyThrows) {
  EXPECT_THROW(solve_projection_qp({}, 0.0), std::invalid_argument);
}

TEST(Qp, ReportsIterationCount) {
  const auto result = solve_projection_qp({0.0, 0.0, 0.0}, 9.0);
  EXPECT_GE(result.iterations, 1u);
  EXPECT_LE(result.iterations, QpConfig{}.max_iterations);
}

}  // namespace
}  // namespace edgeslice::opt
