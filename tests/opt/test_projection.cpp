#include "opt/projection.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"

namespace edgeslice::opt {
namespace {

double vec_sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

double dist2(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += (a[i] - b[i]) * (a[i] - b[i]);
  return d;
}

TEST(HalfspaceGe, FeasiblePointUnchanged) {
  const std::vector<double> c{3.0, 4.0};
  EXPECT_EQ(project_halfspace_sum_ge(c, 5.0), c);
}

TEST(HalfspaceGe, InfeasibleLandsOnBoundary) {
  const auto z = project_halfspace_sum_ge({0.0, 0.0}, 4.0);
  EXPECT_NEAR(vec_sum(z), 4.0, 1e-12);
  EXPECT_NEAR(z[0], 2.0, 1e-12);
}

TEST(HalfspaceGe, EmptyThrows) {
  EXPECT_THROW(project_halfspace_sum_ge({}, 1.0), std::invalid_argument);
}

// Property: the projection is the closest feasible point — no random
// feasible point may be closer.
TEST(HalfspaceGe, ProjectionIsClosestFeasiblePoint) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto c = rng.normals(4, 0.0, 5.0);
    const double bound = rng.uniform(-10, 10);
    const auto z = project_halfspace_sum_ge(c, bound);
    EXPECT_GE(vec_sum(z), bound - 1e-9);
    const double best = dist2(c, z);
    for (int k = 0; k < 20; ++k) {
      auto candidate = rng.normals(4, 0.0, 5.0);
      candidate = project_halfspace_sum_ge(candidate, bound);  // feasible point
      EXPECT_GE(dist2(c, candidate), best - 1e-9);
    }
  }
}

TEST(HalfspaceLe, MirrorsGe) {
  const auto z = project_halfspace_sum_le({3.0, 3.0}, 4.0);
  EXPECT_NEAR(vec_sum(z), 4.0, 1e-12);
  const std::vector<double> ok{1.0, 2.0};
  EXPECT_EQ(project_halfspace_sum_le(ok, 4.0), ok);
}

TEST(Box, ClampsBothSides) {
  const auto z = project_box({-1.0, 0.5, 2.0}, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(z[0], 0.0);
  EXPECT_DOUBLE_EQ(z[1], 0.5);
  EXPECT_DOUBLE_EQ(z[2], 1.0);
  EXPECT_THROW(project_box({1.0}, 2.0, 1.0), std::invalid_argument);
}

TEST(Simplex, AlreadyOnSimplexUnchanged) {
  const auto z = project_simplex({0.25, 0.75}, 1.0);
  EXPECT_NEAR(z[0], 0.25, 1e-12);
  EXPECT_NEAR(z[1], 0.75, 1e-12);
}

TEST(Simplex, ResultIsOnSimplex) {
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const auto c = rng.normals(5, 0.0, 3.0);
    const auto z = project_simplex(c, 2.0);
    EXPECT_NEAR(vec_sum(z), 2.0, 1e-9);
    for (double v : z) EXPECT_GE(v, -1e-12);
  }
}

TEST(Simplex, PreservesOrdering) {
  const auto z = project_simplex({3.0, 1.0, 2.0}, 1.0);
  EXPECT_GE(z[0], z[2]);
  EXPECT_GE(z[2], z[1]);
}

TEST(Simplex, InvalidTotalThrows) {
  EXPECT_THROW(project_simplex({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(project_simplex({}, 1.0), std::invalid_argument);
}

// Property: projecting twice is the same as projecting once (idempotence).
TEST(Projections, Idempotent) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const auto c = rng.normals(4, 0.0, 4.0);
    const auto once = project_halfspace_sum_ge(c, 1.5);
    const auto twice = project_halfspace_sum_ge(once, 1.5);
    for (std::size_t i = 0; i < once.size(); ++i) EXPECT_NEAR(once[i], twice[i], 1e-12);
    const auto s1 = project_simplex(c, 1.0);
    const auto s2 = project_simplex(s1, 1.0);
    for (std::size_t i = 0; i < s1.size(); ++i) EXPECT_NEAR(s1[i], s2[i], 1e-9);
  }
}

}  // namespace
}  // namespace edgeslice::opt
