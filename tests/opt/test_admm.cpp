#include "opt/admm.h"

#include <gtest/gtest.h>

#include <cmath>

namespace edgeslice::opt {
namespace {

TEST(AdmmResiduals, PrimalNormKnownValue) {
  // r = (1-0, 2-2, -3-0) -> ||r|| = sqrt(1 + 0 + 9).
  EXPECT_NEAR(primal_residual_norm({1, 2, -3}, {0, 2, 0}), std::sqrt(10.0), 1e-12);
}

TEST(AdmmResiduals, DualNormScalesWithRho) {
  const double base = dual_residual_norm({1, 1}, {0, 0}, 1.0);
  EXPECT_NEAR(dual_residual_norm({1, 1}, {0, 0}, 2.5), 2.5 * base, 1e-12);
}

TEST(AdmmResiduals, SizeMismatchThrows) {
  EXPECT_THROW(primal_residual_norm({1}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(dual_residual_norm({1}, {1, 2}, 1.0), std::invalid_argument);
}

TEST(AdmmDuals, UpdateAccumulatesResidual) {
  std::vector<double> y{0.5, -0.5};
  update_scaled_duals(y, {2.0, 1.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 1.5);   // 0.5 + (2 - 1)
  EXPECT_DOUBLE_EQ(y[1], -0.5);  // -0.5 + (1 - 1)
}

TEST(AdmmDuals, ZeroResidualFixedPoint) {
  std::vector<double> y{1.0, 2.0};
  update_scaled_duals(y, {3.0, 4.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

TEST(AdmmMonitor, ConvergesOnSmallResiduals) {
  AdmmMonitor monitor;
  monitor.record({10.0, 10.0}, 100.0, 100.0, 4);
  EXPECT_FALSE(monitor.converged());
  monitor.record({1e-6, 1e-6}, 100.0, 100.0, 4);
  EXPECT_TRUE(monitor.converged());
  EXPECT_EQ(monitor.iterations(), 2u);
}

TEST(AdmmMonitor, MinIterationsRespected) {
  AdmmStopCriteria criteria;
  criteria.min_iterations = 3;
  AdmmMonitor monitor(criteria);
  monitor.record({0.0, 0.0}, 1.0, 1.0, 2);
  monitor.record({0.0, 0.0}, 1.0, 1.0, 2);
  EXPECT_FALSE(monitor.converged());
  monitor.record({0.0, 0.0}, 1.0, 1.0, 2);
  EXPECT_TRUE(monitor.converged());
}

TEST(AdmmMonitor, RelativeToleranceScalesWithProblem) {
  AdmmStopCriteria criteria;
  criteria.absolute_tolerance = 0.0;
  criteria.relative_tolerance = 0.1;
  criteria.min_iterations = 1;
  AdmmMonitor monitor(criteria);
  // primal 5 <= 0.1 * 100, dual 5 <= 0.1 * 100 -> converged.
  monitor.record({5.0, 5.0}, 100.0, 100.0, 4);
  EXPECT_TRUE(monitor.converged());
}

TEST(AdmmMonitor, ExhaustionFlag) {
  AdmmStopCriteria criteria;
  criteria.max_iterations = 2;
  AdmmMonitor monitor(criteria);
  monitor.record({10, 10}, 1.0, 1.0, 2);
  EXPECT_FALSE(monitor.exhausted());
  monitor.record({10, 10}, 1.0, 1.0, 2);
  EXPECT_TRUE(monitor.exhausted());
}

TEST(AdmmMonitor, HistoryIsRecorded) {
  AdmmMonitor monitor;
  monitor.record({1.0, 2.0}, 1.0, 1.0, 2);
  ASSERT_EQ(monitor.history().size(), 1u);
  EXPECT_DOUBLE_EQ(monitor.history()[0].primal, 1.0);
  EXPECT_DOUBLE_EQ(monitor.history()[0].dual, 2.0);
}

}  // namespace
}  // namespace edgeslice::opt
