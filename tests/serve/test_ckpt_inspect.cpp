// ckpt-inspect and the serve-side policy loader (ctest label: serve).
//
// ckpt-inspect's contract (FORMATS.md Sec. 2 usage notes): a clean exit
// IS an integrity check — the dump prints only fully validated data, and
// any corruption exits nonzero with the reader's error. The policy
// loader's contract: the digest is an address, so the stored
// fingerprint's digest must match the requested one byte-for-byte.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "ckpt/agent_cache.h"
#include "ckpt/container.h"
#include "common/rng.h"
#include "nn/mlp.h"
#include "serve/policy_loader.h"

namespace edgeslice::serve {
namespace {

namespace fs = std::filesystem;

nn::Mlp make_policy(std::uint64_t seed) {
  Rng rng(seed);
  return nn::Mlp({5, 8, 3}, nn::Activation::LeakyRelu, nn::Activation::Sigmoid,
                 rng);
}

class CkptInspectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("edgeslice_inspect_" +
                                        std::to_string(::getpid()) + "_" +
                                        std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Run ckpt_inspect, capture stdout, return (exit code, output).
  std::pair<int, std::string> inspect(const std::string& flags) {
    const std::string out_path = (dir_ / "inspect.out").string();
    const std::string command = std::string(EDGESLICE_CKPT_INSPECT_PATH) + " " +
                                flags + " > " + out_path + " 2>&1";
    const int status = std::system(command.c_str());
    std::ifstream in(out_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return {WIFEXITED(status) ? WEXITSTATUS(status) : -1, buffer.str()};
  }

  fs::path dir_;
  static int counter_;
};

int CkptInspectTest::counter_ = 0;

TEST_F(CkptInspectTest, DumpsSectionTableAndFingerprintDigest) {
  const std::string fingerprint = "algorithm = DDPG\nseed = 21\n";
  ASSERT_TRUE(ckpt::store_policy(dir_.string(), fingerprint, make_policy(21)));
  const std::string path = ckpt::cache_entry_path(dir_.string(), fingerprint);

  const auto [code, output] = inspect("--in " + path);
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("ESCK v1"), std::string::npos) << output;
  EXPECT_NE(output.find(ckpt::fingerprint_digest(fingerprint)), std::string::npos)
      << output;
  EXPECT_NE(output.find("policy"), std::string::npos) << output;  // section kind
  EXPECT_NE(output.find("sections:           1"), std::string::npos) << output;
}

TEST_F(CkptInspectTest, PrintsFingerprintTextOnRequest) {
  const std::string fingerprint = "algorithm = DDPG\nseed = 22\n";
  ASSERT_TRUE(ckpt::store_policy(dir_.string(), fingerprint, make_policy(22)));
  const std::string path = ckpt::cache_entry_path(dir_.string(), fingerprint);

  const auto [code, output] = inspect("--in " + path + " --fingerprint true");
  EXPECT_EQ(code, 0);
  EXPECT_NE(output.find("seed = 22"), std::string::npos) << output;
}

TEST_F(CkptInspectTest, CorruptionExitsNonzeroWithTheReadersError) {
  const std::string fingerprint = "algorithm = DDPG\nseed = 23\n";
  ASSERT_TRUE(ckpt::store_policy(dir_.string(), fingerprint, make_policy(23)));
  const std::string path = ckpt::cache_entry_path(dir_.string(), fingerprint);
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(-3, std::ios::end);
    file.put('\xff');  // flip a payload byte: section CRC now lies
  }
  const auto [code, output] = inspect("--in " + path);
  EXPECT_NE(code, 0);
  EXPECT_NE(output.find("ckpt_inspect:"), std::string::npos) << output;
}

TEST_F(CkptInspectTest, MissingFileExitsNonzero) {
  const auto [code, output] = inspect("--in " + (dir_ / "absent.ckpt").string());
  EXPECT_NE(code, 0);
}

TEST(PolicyLoader, LoadsByDigestAndVerifiesTheAddress) {
  const fs::path dir =
      fs::temp_directory_path() / ("edgeslice_loader_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string fingerprint = "algorithm = DDPG\nseed = 31\n";
  const nn::Mlp policy = make_policy(31);
  ASSERT_TRUE(ckpt::store_policy(dir.string(), fingerprint, policy));
  const std::string digest = ckpt::fingerprint_digest(fingerprint);

  const LoadedPolicy loaded = load_policy_by_digest(dir.string(), digest);
  EXPECT_EQ(loaded.digest, digest);
  EXPECT_EQ(loaded.fingerprint, fingerprint);
  const std::vector<double> x = {0.1, 0.2, 0.3, 0.4, 0.5};
  EXPECT_EQ(loaded.policy.infer_vector(x), policy.infer_vector(x));

  // A hand-renamed entry is not the policy its filename claims: the
  // stored fingerprint digests to the original address, not the new one.
  const std::string forged = dir.string() + "/0000000000000000.ckpt";
  fs::copy_file(dir / (digest + ".ckpt"), forged);
  EXPECT_THROW(load_policy_by_digest(dir.string(), "0000000000000000"),
               std::runtime_error);

  // load_policy_file accepts any name and reports the true address.
  const LoadedPolicy from_file = load_policy_file(forged);
  EXPECT_EQ(from_file.digest, digest);
  fs::remove_all(dir);
}

TEST(PolicyLoader, MissingEntryThrows) {
  EXPECT_THROW(load_policy_by_digest("/nonexistent-dir", "0123456789abcdef"),
               std::runtime_error);
}

}  // namespace
}  // namespace edgeslice::serve
