// Serve payload codecs (ctest label: serve).
//
// The contract under test (FORMATS.md "Serve payloads"): every payload
// round-trips exactly (doubles as IEEE-754 bit patterns), truncation at
// any field throws a context-naming runtime_error instead of misparsing,
// trailing bytes throw (serve payloads are closed records), and hostile
// vector length prefixes are rejected before allocation.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/binio.h"
#include "serve/protocol.h"

namespace edgeslice::serve {
namespace {

TEST(ServeProtocol, DecideRequestRoundTripsExactly) {
  DecideRequestPayload request;
  request.request_id = 0xdeadbeefcafe0123ull;
  request.observation = {0.0, -1.5, 3.14159, 1e-308, -0.0};

  const DecideRequestPayload got =
      decode_decide_request(encode_decide_request(request));
  EXPECT_EQ(got.request_id, request.request_id);
  ASSERT_EQ(got.observation.size(), request.observation.size());
  for (std::size_t i = 0; i < got.observation.size(); ++i) {
    // Bit-level comparison: -0.0 must survive as -0.0.
    EXPECT_EQ(std::signbit(got.observation[i]), std::signbit(request.observation[i]));
    EXPECT_EQ(got.observation[i], request.observation[i]);
  }
}

TEST(ServeProtocol, DecideResponseRoundTripsEveryStatus) {
  for (std::uint32_t status : {kDecideOk, kDecideBadRequest, kDecideShed}) {
    DecideResponsePayload response;
    response.request_id = 42;
    response.status = status;
    response.action = status == kDecideOk ? std::vector<double>{0.25, 0.75}
                                          : std::vector<double>{};
    const DecideResponsePayload got =
        decode_decide_response(encode_decide_response(response));
    EXPECT_EQ(got.request_id, response.request_id);
    EXPECT_EQ(got.status, status);
    EXPECT_EQ(got.action, response.action);
  }
}

TEST(ServeProtocol, ServeStatusRoundTripsExactly) {
  ServeStatusPayload status;
  status.policy_digest = "9f2a77aa01234567";
  status.state_dim = 8;
  status.action_dim = 3;
  status.batch_max = 64;
  status.queue_limit = 256;
  status.queue_depth = 17;
  status.decided = 1000000;
  status.shed = 123;
  status.rejected = 4;
  status.p50_decision_seconds = 0.00113;
  status.p99_decision_seconds = 0.00987;

  const ServeStatusPayload got = decode_serve_status(encode_serve_status(status));
  EXPECT_EQ(got.policy_digest, status.policy_digest);
  EXPECT_EQ(got.state_dim, status.state_dim);
  EXPECT_EQ(got.action_dim, status.action_dim);
  EXPECT_EQ(got.batch_max, status.batch_max);
  EXPECT_EQ(got.queue_limit, status.queue_limit);
  EXPECT_EQ(got.queue_depth, status.queue_depth);
  EXPECT_EQ(got.decided, status.decided);
  EXPECT_EQ(got.shed, status.shed);
  EXPECT_EQ(got.rejected, status.rejected);
  EXPECT_EQ(got.p50_decision_seconds, status.p50_decision_seconds);
  EXPECT_EQ(got.p99_decision_seconds, status.p99_decision_seconds);
}

TEST(ServeProtocol, TruncationAtEveryByteThrowsInsteadOfMisparse) {
  DecideRequestPayload request;
  request.request_id = 7;
  request.observation = {1.0, 2.0, 3.0};
  const std::string bytes = encode_decide_request(request);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(decode_decide_request(bytes.substr(0, cut)), std::runtime_error)
        << "cut at " << cut;
  }

  DecideResponsePayload response;
  response.request_id = 7;
  response.status = kDecideOk;
  response.action = {0.5};
  const std::string response_bytes = encode_decide_response(response);
  for (std::size_t cut = 0; cut < response_bytes.size(); ++cut) {
    EXPECT_THROW(decode_decide_response(response_bytes.substr(0, cut)),
                 std::runtime_error)
        << "cut at " << cut;
  }

  const std::string status_bytes = encode_serve_status(ServeStatusPayload{});
  for (std::size_t cut = 0; cut < status_bytes.size(); ++cut) {
    EXPECT_THROW(decode_serve_status(status_bytes.substr(0, cut)),
                 std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(ServeProtocol, TrailingBytesAreCorruptionNotExtensibility) {
  DecideRequestPayload request;
  request.observation = {1.0};
  EXPECT_THROW(decode_decide_request(encode_decide_request(request) + "x"),
               std::runtime_error);
  EXPECT_THROW(
      decode_decide_response(encode_decide_response(DecideResponsePayload{}) + "x"),
      std::runtime_error);
  EXPECT_THROW(decode_serve_status(encode_serve_status(ServeStatusPayload{}) + "x"),
               std::runtime_error);
}

TEST(ServeProtocol, HostileObservationLengthIsRejectedBeforeAllocation) {
  // A request claiming 2^60 doubles must throw on the length prefix, not
  // attempt an exabyte allocation (the length exceeds kMaxObservationDim).
  std::ostringstream out;
  write_u64(out, 1);                      // request_id
  write_u64(out, 1ull << 60);             // hostile vector length
  EXPECT_THROW(decode_decide_request(out.str()), std::runtime_error);
}

TEST(ServeProtocol, StatusNamesAreStable) {
  EXPECT_STREQ(decide_status_name(kDecideOk), "ok");
  EXPECT_STREQ(decide_status_name(kDecideBadRequest), "bad_request");
  EXPECT_STREQ(decide_status_name(kDecideShed), "shed");
  EXPECT_STREQ(decide_status_name(12345), "unknown");
}

}  // namespace
}  // namespace edgeslice::serve
