// The serving determinism gate (ctest label: serve).
//
// The contract under test (DESIGN.md "Policy-serving plane"): a served
// decision for observation x is bit-identical to Agent::act(x) on the
// same network — under every GEMM backend, whatever batch the request
// happened to ride in. The chain: FrozenActor::act is a pure forward
// pass (infer_vector), BatchedActor's per-row contract makes row r of an
// m-row product bit-identical to the 1-row product under both backends,
// and the serve payload codec moves doubles as exact IEEE-754 bit
// patterns. This suite pins the process-global GEMM backend, which is
// why it shares an executable only with other serve tests (run serially
// by gtest) and resets the pin after every case.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "nn/gemm.h"
#include "nn/mlp.h"
#include "rl/frozen.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace edgeslice::serve {
namespace {

nn::Mlp make_policy(std::uint64_t seed) {
  Rng rng(seed);
  // The paper's actor shape at reduced width: two hidden layers, sigmoid
  // allocation head.
  return nn::Mlp({8, 32, 32, 3}, nn::Activation::LeakyRelu,
                 nn::Activation::Sigmoid, rng);
}

std::vector<std::vector<double>> make_observations(std::uint64_t seed,
                                                   std::size_t count) {
  Rng rng(seed);
  std::vector<std::vector<double>> observations(count);
  for (auto& observation : observations) observation = rng.uniforms(8);
  return observations;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // memcmp, not ==: the gate is bit-identity, and == would also accept
    // -0.0 vs 0.0.
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
        << "component " << i << ": " << a[i] << " vs " << b[i];
  }
}

void run_identity_check(nn::GemmBackend backend) {
  nn::set_gemm_backend(backend);
  constexpr std::size_t kRequests = 32;
  const auto observations = make_observations(99, kRequests);

  // Reference decisions: Agent::act on the identical network, unbatched.
  rl::FrozenActor reference(make_policy(42));
  std::vector<std::vector<double>> expected;
  expected.reserve(kRequests);
  for (const auto& observation : observations) {
    expected.push_back(reference.act(observation, /*explore=*/false));
  }

  PolicyServerConfig config;
  config.poll_ms = 1;
  config.batch_max = 8;  // forces multi-row batches AND leftover tails
  PolicyServer server(make_policy(42), config);
  ASSERT_TRUE(server.start());
  ServeClient client = ServeClient::connect("127.0.0.1", server.port());

  // Burst everything so requests ride shared batches of whatever
  // composition the tick timing produces — the identity must not care.
  for (std::size_t id = 0; id < kRequests; ++id) {
    client.send_decide(id, observations[id]);
  }
  std::size_t answered = 0;
  while (answered < kRequests) {
    const auto responses = client.poll_decisions(5000);
    ASSERT_FALSE(responses.empty()) << "server stopped answering";
    for (const DecideResponsePayload& response : responses) {
      ASSERT_EQ(response.status, kDecideOk);
      ASSERT_LT(response.request_id, kRequests);
      expect_bitwise_equal(response.action, expected[response.request_id]);
      ++answered;
    }
  }
  server.stop();

  // One-at-a-time serving must agree too (batch of 1 vs batch of many).
  PolicyServer single(make_policy(42), config);
  ASSERT_TRUE(single.start());
  ServeClient single_client = ServeClient::connect("127.0.0.1", single.port());
  for (std::size_t id = 0; id < 4; ++id) {
    const DecideResponsePayload response =
        single_client.decide(id, observations[id]);
    ASSERT_EQ(response.status, kDecideOk);
    expect_bitwise_equal(response.action, expected[id]);
  }
  single.stop();
}

class ServeIdentity : public ::testing::Test {
 protected:
  void TearDown() override { nn::reset_gemm_backend(); }
};

TEST_F(ServeIdentity, ServedDecisionsMatchAgentActUnderScalarGemm) {
  run_identity_check(nn::GemmBackend::Scalar);
}

TEST_F(ServeIdentity, ServedDecisionsMatchAgentActUnderAvx2Gemm) {
  if (!nn::cpu_supports_avx2_fma()) {
    GTEST_SKIP() << "CPU lacks AVX2+FMA";
  }
  run_identity_check(nn::GemmBackend::Avx2);
}

// No cross-backend assertion on purpose: the two backends are each
// internally deterministic but may differ BETWEEN pins (see
// tests/nn/test_gemm_identity.cpp) — the serving gate is served ==
// Agent::act under the SAME pin, which the two cases above cover.

}  // namespace
}  // namespace edgeslice::serve
