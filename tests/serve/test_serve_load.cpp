// The serving CLIs end to end (ctest label: serve).
//
// Drives the real binaries: bench/serve_load in its self-contained mode
// (open-loop Poisson load against an in-process server, BENCH_serving.json
// out) and tools/policy_serve as a daemon (cache-entry load by digest,
// --port-file discovery, SIGTERM shutdown). Subprocess + socket tests
// hang on bugs, so the suite carries hard TIMEOUTs at the ctest level.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_ledger_lib.h"
#include "ckpt/agent_cache.h"
#include "common/rng.h"
#include "nn/mlp.h"
#include "serve/client.h"
#include "serve/protocol.h"

namespace edgeslice::serve {
namespace {

namespace fs = std::filesystem;

/// Every field the BENCH_serving.json schema (FORMATS.md) carries. Kept
/// in sync with bench/serve_load.cpp's kServeBenchFields by this test:
/// a field added to the bench without landing here (and in FORMATS.md,
/// via docs_check) fails.
constexpr const char* kExpectedFields[] = {
    "state_dim", "action_dim", "hidden_dim", "batch_max", "queue_limit",
    "connections", "offered_rate", "requests", "seed", "gemm_backend",
    "wall_seconds", "sent", "decided", "shed", "rejected", "lost",
    "achieved_rate", "shed_rate", "p50_decision_seconds",
    "p99_decision_seconds", "p999_decision_seconds", "p50_server_seconds",
    "p99_server_seconds",
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class ServeLoadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("edgeslice_serve_load_" +
                                        std::to_string(::getpid()) + "_" +
                                        std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  static int counter_;
};

int ServeLoadTest::counter_ = 0;

TEST_F(ServeLoadTest, BenchWritesEveryDocumentedFieldAndConserves) {
  const std::string out = (dir_ / "BENCH_serving.json").string();
  const std::string command = std::string(EDGESLICE_SERVE_LOAD_PATH) +
                              " --requests 400 --rate 8000 --connections 2"
                              " --queue-limit 64 --batch-max 16 --seed 3"
                              " --out " + out + " > /dev/null";
  ASSERT_EQ(std::system(command.c_str()), 0);

  const auto fields = tools::parse_flat_json(read_file(out));
  for (const char* field : kExpectedFields) {
    EXPECT_TRUE(fields.count(field)) << "BENCH_serving.json missing " << field;
  }
  EXPECT_EQ(fields.size(), sizeof(kExpectedFields) / sizeof(kExpectedFields[0]));

  const auto number = [&](const char* key) {
    return std::stod(fields.at(key));
  };
  // Conservation: every sent request is accounted for exactly once.
  EXPECT_EQ(number("sent"), 400.0);
  EXPECT_EQ(number("sent"), number("decided") + number("shed") +
                                number("rejected") + number("lost"));
  EXPECT_GT(number("decided"), 0.0);
  EXPECT_GE(number("p99_decision_seconds"), number("p50_decision_seconds"));
  EXPECT_GE(number("p999_decision_seconds"), number("p99_decision_seconds"));
}

TEST_F(ServeLoadTest, BenchOutputIsLedgerMaterial) {
  const std::string out = (dir_ / "BENCH_serving.json").string();
  const std::string command = std::string(EDGESLICE_SERVE_LOAD_PATH) +
                              " --requests 200 --rate 8000 --seed 5 --out " +
                              out + " > /dev/null";
  ASSERT_EQ(std::system(command.c_str()), 0);

  // bench_ledger splits identity (config.*) from measurement (metric.*):
  // the load point and shapes are identity, the latencies are metrics,
  // and p99 decision latency regresses in the documented direction.
  const tools::BenchEntry entry =
      tools::make_entry(read_file(out), "sha-test", "serving");
  for (const char* key : {"state_dim", "action_dim", "hidden_dim", "batch_max",
                          "queue_limit", "connections", "offered_rate",
                          "requests", "seed", "gemm_backend"}) {
    EXPECT_TRUE(entry.config.count(key)) << key << " should be config";
  }
  for (const char* key :
       {"wall_seconds", "achieved_rate", "shed_rate", "p50_decision_seconds",
        "p99_decision_seconds", "p999_decision_seconds"}) {
    EXPECT_TRUE(entry.metrics.count(key)) << key << " should be a metric";
  }
  EXPECT_EQ(tools::metric_direction("p99_decision_seconds"), -1);
  EXPECT_EQ(tools::metric_direction("achieved_rate"), 1);
  EXPECT_EQ(tools::metric_direction("shed_rate"), -1);

  // Same config -> same fingerprint; a different load point must not
  // alias (offered_rate is identity, not measurement).
  const tools::BenchEntry again =
      tools::make_entry(read_file(out), "sha-test-2", "serving");
  EXPECT_EQ(entry.fingerprint, again.fingerprint);
}

TEST_F(ServeLoadTest, PolicyServeDaemonServesCacheEntryByDigest) {
  // Publish a trained-policy stand-in into the agent cache.
  Rng rng(11);
  nn::Mlp policy({6, 16, 2}, nn::Activation::LeakyRelu, nn::Activation::Sigmoid,
                 rng);
  const std::string fingerprint = "algorithm = DDPG\nseed = 11\nserve-test = 1\n";
  const std::string cache_dir = (dir_ / "cache").string();
  ASSERT_TRUE(ckpt::store_policy(cache_dir, fingerprint, policy));
  const std::string digest = ckpt::fingerprint_digest(fingerprint);

  const std::string port_file = (dir_ / "port").string();
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::execl(EDGESLICE_POLICY_SERVE_PATH, EDGESLICE_POLICY_SERVE_PATH,
            "--cache-dir", cache_dir.c_str(), "--digest", digest.c_str(),
            "--port-file", port_file.c_str(), "--status-every", "0",
            static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }

  // Discover the bound port (written atomically once listening).
  std::uint16_t port = 0;
  for (int attempt = 0; attempt < 200 && port == 0; ++attempt) {
    std::ifstream in(port_file);
    int value = 0;
    if (in >> value && value > 0) {
      port = static_cast<std::uint16_t>(value);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_GT(port, 0) << "daemon never published its port";

  // The daemon serves the cached policy and reports its address.
  ServeClient client = ServeClient::connect("127.0.0.1", port);
  const ServeStatusPayload status = client.status();
  EXPECT_EQ(status.policy_digest, digest);
  EXPECT_EQ(status.state_dim, 6u);
  EXPECT_EQ(status.action_dim, 2u);

  const DecideResponsePayload response =
      client.decide(1, {0.1, 0.2, 0.3, 0.4, 0.5, 0.6});
  EXPECT_EQ(response.status, kDecideOk);
  // Bit-identity with the in-process policy (scalar/avx2 auto pin is the
  // same in both processes: same binary defaults, same CPU).
  const std::vector<double> expected =
      policy.infer_vector({0.1, 0.2, 0.3, 0.4, 0.5, 0.6});
  EXPECT_EQ(response.action, expected);

  // SIGTERM is a clean shutdown.
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  EXPECT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

TEST_F(ServeLoadTest, PolicyServeRefusesAMissingDigest) {
  const std::string command = std::string(EDGESLICE_POLICY_SERVE_PATH) +
                              " --cache-dir " + (dir_ / "nope").string() +
                              " --digest 0123456789abcdef 2> /dev/null";
  const int status = std::system(command.c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_NE(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace edgeslice::serve
