// The policy-serve daemon core (ctest label: serve).
//
// The contract under test (DESIGN.md "Policy-serving plane"): the daemon
// answers decisions over the ESFR protocol; admission control sheds with
// a 429-style status the instant the bounded queue is full (never by
// slowing everyone down); wrong-dimension observations are rejected with
// a 400-style status; and hostile bytes — truncated frames, corrupt
// CRCs, oversized payloads, unexpected frame types — tear down that one
// connection and never the daemon. Socket tests hang on bugs, so the
// suite carries hard TIMEOUTs at the ctest level.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/rng.h"
#include "ipc/frame.h"
#include "nn/mlp.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace edgeslice::serve {
namespace {

nn::Mlp make_policy(std::uint64_t seed, std::size_t in = 4, std::size_t out = 2) {
  Rng rng(seed);
  return nn::Mlp({in, 16, out}, nn::Activation::LeakyRelu, nn::Activation::Sigmoid,
                 rng);
}

TEST(PolicyServer, StartsOnEphemeralPortAndStopsIdempotently) {
  PolicyServer server(make_policy(1));
  ASSERT_TRUE(server.start());
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(PolicyServer, AnswersPingAndStatus) {
  PolicyServerConfig config;
  config.poll_ms = 1;
  config.policy_digest = "0123456789abcdef";
  PolicyServer server(make_policy(2), config);
  ASSERT_TRUE(server.start());

  ServeClient client = ServeClient::connect("127.0.0.1", server.port());
  EXPECT_EQ(client.ping("nonce"), "nonce");

  const ServeStatusPayload status = client.status();
  EXPECT_EQ(status.policy_digest, "0123456789abcdef");
  EXPECT_EQ(status.state_dim, 4u);
  EXPECT_EQ(status.action_dim, 2u);
  EXPECT_EQ(status.queue_depth, 0u);
  EXPECT_EQ(status.decided, 0u);
  server.stop();
}

TEST(PolicyServer, DecidesAndEchoesRequestIds) {
  PolicyServerConfig config;
  config.poll_ms = 1;
  PolicyServer server(make_policy(3), config);
  ASSERT_TRUE(server.start());

  ServeClient client = ServeClient::connect("127.0.0.1", server.port());
  const DecideResponsePayload response =
      client.decide(0xfeedface, {0.1, 0.2, 0.3, 0.4});
  EXPECT_EQ(response.request_id, 0xfeedfaceu);
  EXPECT_EQ(response.status, kDecideOk);
  ASSERT_EQ(response.action.size(), 2u);
  for (double a : response.action) {
    EXPECT_GE(a, 0.0);  // sigmoid head
    EXPECT_LE(a, 1.0);
  }
  const ServeCounters counters = server.counters();
  EXPECT_EQ(counters.decided, 1u);
  EXPECT_EQ(counters.requests, 1u);
  server.stop();
}

TEST(PolicyServer, WrongObservationDimIsRejectedWith400) {
  PolicyServerConfig config;
  config.poll_ms = 1;
  PolicyServer server(make_policy(4), config);
  ASSERT_TRUE(server.start());

  ServeClient client = ServeClient::connect("127.0.0.1", server.port());
  const DecideResponsePayload response = client.decide(1, {0.1, 0.2});  // dim 2 != 4
  EXPECT_EQ(response.status, kDecideBadRequest);
  EXPECT_TRUE(response.action.empty());
  EXPECT_EQ(server.counters().rejected, 1u);
  EXPECT_EQ(server.counters().decided, 0u);
  server.stop();
}

TEST(PolicyServer, ZeroQueueLimitShedsEverythingWith429) {
  // queue_limit 0 is drain mode: admission control rejects every request
  // immediately — the deterministic end of the shed spectrum.
  PolicyServerConfig config;
  config.poll_ms = 1;
  config.queue_limit = 0;
  PolicyServer server(make_policy(5), config);
  ASSERT_TRUE(server.start());

  ServeClient client = ServeClient::connect("127.0.0.1", server.port());
  for (std::uint64_t id = 0; id < 8; ++id) {
    const DecideResponsePayload response =
        client.decide(id, {0.1, 0.2, 0.3, 0.4});
    EXPECT_EQ(response.status, kDecideShed);
    EXPECT_TRUE(response.action.empty());
  }
  EXPECT_EQ(server.counters().shed, 8u);
  EXPECT_EQ(server.counters().decided, 0u);
  server.stop();
}

TEST(PolicyServer, BurstBeyondQueueLimitShedsTheOverflow) {
  // A burst written in one shot against a tiny queue: every request is
  // answered (ok or shed), and at least one lands in each bucket. The
  // exact split depends on tick timing — the invariant is conservation
  // and the presence of shedding, not a specific count.
  PolicyServerConfig config;
  config.poll_ms = 1;
  config.queue_limit = 2;
  config.batch_max = 2;
  PolicyServer server(make_policy(6), config);
  ASSERT_TRUE(server.start());

  ServeClient client = ServeClient::connect("127.0.0.1", server.port());
  constexpr std::uint64_t kBurst = 64;
  for (std::uint64_t id = 0; id < kBurst; ++id) {
    client.send_decide(id, {0.1, 0.2, 0.3, 0.4});
  }
  std::size_t ok = 0, shed = 0;
  std::size_t answered = 0;
  while (answered < kBurst) {
    const auto responses = client.poll_decisions(5000);
    ASSERT_FALSE(responses.empty()) << "server stopped answering";
    for (const DecideResponsePayload& response : responses) {
      ++answered;
      if (response.status == kDecideOk) ++ok;
      if (response.status == kDecideShed) ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GE(ok, 1u);
  const ServeCounters counters = server.counters();
  EXPECT_EQ(counters.decided, ok);
  EXPECT_EQ(counters.shed, shed);
  server.stop();
}

TEST(PolicyServer, TruncatedDecideRequestTearsDownOnlyThatConnection) {
  PolicyServerConfig config;
  config.poll_ms = 1;
  PolicyServer server(make_policy(7), config);
  ASSERT_TRUE(server.start());

  // A DecideRequest whose payload stops mid-observation: parses as a
  // frame, fails payload decode -> protocol error, connection closed.
  ServeClient hostile = ServeClient::connect("127.0.0.1", server.port());
  std::ostringstream truncated;
  write_u64(truncated, 1);  // request_id
  write_u64(truncated, 4);  // claims 4 doubles...
  write_f64(truncated, 0.5);  // ...delivers 1
  hostile.send_frame(ipc::FrameType::DecideRequest, truncated.str());
  EXPECT_THROW(
      {
        for (;;) hostile.ping("x", 2000);
      },
      std::runtime_error);

  // The daemon survives: a fresh connection still decides.
  ServeClient healthy = ServeClient::connect("127.0.0.1", server.port());
  EXPECT_EQ(healthy.decide(2, {0.1, 0.2, 0.3, 0.4}).status, kDecideOk);
  EXPECT_GE(server.counters().protocol_errors, 1u);
  server.stop();
}

TEST(PolicyServer, CorruptCrcTearsDownOnlyThatConnection) {
  PolicyServerConfig config;
  config.poll_ms = 1;
  PolicyServer server(make_policy(8), config);
  ASSERT_TRUE(server.start());

  ServeClient hostile = ServeClient::connect("127.0.0.1", server.port());
  DecideRequestPayload request;
  request.request_id = 1;
  request.observation = {0.1, 0.2, 0.3, 0.4};
  ipc::Frame frame;
  frame.type = ipc::FrameType::DecideRequest;
  frame.seq = 0;
  frame.payload = encode_decide_request(request);
  std::string bytes = ipc::encode_frame(frame);
  bytes.back() ^= 0x40;  // flip a payload bit: payload CRC now lies
  hostile.send_raw(bytes);
  EXPECT_THROW(
      {
        for (;;) hostile.ping("x", 2000);
      },
      std::runtime_error);

  ServeClient healthy = ServeClient::connect("127.0.0.1", server.port());
  EXPECT_EQ(healthy.decide(2, {0.1, 0.2, 0.3, 0.4}).status, kDecideOk);
  server.stop();
}

TEST(PolicyServer, OversizedFrameHeaderTearsDownOnlyThatConnection) {
  PolicyServerConfig config;
  config.poll_ms = 1;
  PolicyServer server(make_policy(9), config);
  ASSERT_TRUE(server.start());

  // A header claiming a payload beyond the hostile cap: rejected at
  // header decode, before any allocation.
  ServeClient hostile = ServeClient::connect("127.0.0.1", server.port());
  ipc::Frame frame;
  frame.type = ipc::FrameType::DecideRequest;
  frame.seq = 0;
  frame.payload = "x";
  std::string bytes = ipc::encode_frame(frame);
  // payload_len lives at offset 24 (FORMATS.md "ESFR wire frame"):
  // rewrite it to 1 TiB. Header CRC will also mismatch — either way the
  // connection must die cleanly.
  const std::uint64_t huge = 1ull << 40;
  for (int i = 0; i < 8; ++i)
    bytes[24 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  hostile.send_raw(bytes);
  EXPECT_THROW(
      {
        for (;;) hostile.ping("x", 2000);
      },
      std::runtime_error);

  ServeClient healthy = ServeClient::connect("127.0.0.1", server.port());
  EXPECT_EQ(healthy.decide(2, {0.1, 0.2, 0.3, 0.4}).status, kDecideOk);
  server.stop();
}

TEST(PolicyServer, UnexpectedFrameTypeTearsDownOnlyThatConnection) {
  PolicyServerConfig config;
  config.poll_ms = 1;
  PolicyServer server(make_policy(10), config);
  ASSERT_TRUE(server.start());

  ServeClient hostile = ServeClient::connect("127.0.0.1", server.port());
  hostile.send_frame(ipc::FrameType::Shutdown, "");
  EXPECT_THROW(
      {
        for (;;) hostile.ping("x", 2000);
      },
      std::runtime_error);

  ServeClient healthy = ServeClient::connect("127.0.0.1", server.port());
  EXPECT_EQ(healthy.decide(2, {0.1, 0.2, 0.3, 0.4}).status, kDecideOk);
  EXPECT_GE(server.counters().protocol_errors, 1u);
  server.stop();
}

TEST(PolicyServer, ManyConnectionsShareOneServer) {
  PolicyServerConfig config;
  config.poll_ms = 1;
  PolicyServer server(make_policy(11), config);
  ASSERT_TRUE(server.start());

  std::vector<ServeClient> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(ServeClient::connect("127.0.0.1", server.port()));
  }
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const DecideResponsePayload response =
        clients[i].decide(i, {0.1, 0.2, 0.3, 0.4});
    EXPECT_EQ(response.status, kDecideOk);
    EXPECT_EQ(response.request_id, i);
  }
  EXPECT_EQ(server.counters().decided, clients.size());
  EXPECT_EQ(server.counters().accepted, clients.size());
  server.stop();
}

}  // namespace
}  // namespace edgeslice::serve
