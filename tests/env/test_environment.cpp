#include "env/environment.h"

#include <gtest/gtest.h>

#include <memory>

namespace edgeslice::env {
namespace {

RaEnvironment make_env(RaEnvironmentConfig config = {}, double alpha = 2.0,
                       std::uint64_t seed = 1) {
  const auto model = std::make_shared<DirectServiceModel>(prototype_capacity());
  return RaEnvironment(config, {slice1_profile(), slice2_profile()}, model,
                       make_queue_power_perf(alpha), Rng(seed));
}

std::vector<double> equal_action() { return std::vector<double>(6, 0.5); }

TEST(Environment, DimensionsMatchPaperState) {
  auto environment = make_env();
  // Eq. 13: queue lengths + coordination, one each per slice.
  EXPECT_EQ(environment.state_dim(), 4u);
  EXPECT_EQ(environment.action_dim(), 6u);  // I * K = 2 * 3
  EXPECT_EQ(environment.state().size(), 4u);
}

TEST(Environment, NtVariantDropsTrafficFromState) {
  RaEnvironmentConfig config;
  config.include_traffic_in_state = false;  // EdgeSlice-NT
  auto environment = make_env(config);
  EXPECT_EQ(environment.state_dim(), 2u);
}

TEST(Environment, ValidatesConstruction) {
  const auto model = std::make_shared<DirectServiceModel>(prototype_capacity());
  RaEnvironmentConfig config;
  EXPECT_THROW(RaEnvironment(config, {slice1_profile()}, model, make_queue_power_perf(),
                             Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(RaEnvironment(config, {slice1_profile(), slice2_profile()}, nullptr,
                             make_queue_power_perf(), Rng(1)),
               std::invalid_argument);
}

TEST(Environment, StepValidatesAction) {
  auto environment = make_env();
  EXPECT_THROW(environment.step({0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(environment.step({2.0, 0, 0, 0, 0, 0}), std::invalid_argument);
}

TEST(Environment, QueuesGrowWithoutResources) {
  auto environment = make_env();
  const auto result = environment.step(std::vector<double>(6, 0.0));
  EXPECT_GT(result.queue_lengths[0] + result.queue_lengths[1], 0.0);
  EXPECT_LT(result.performance[0] + result.performance[1], 0.0);
}

TEST(Environment, AdequateResourcesDrainQueues) {
  RaEnvironmentConfig config;
  config.arrival_rate = 2.0;  // light load
  auto environment = make_env(config);
  double final_queue = 0.0;
  for (int t = 0; t < 50; ++t) {
    const auto result = environment.step(equal_action());
    final_queue = result.queue_lengths[0] + result.queue_lengths[1];
  }
  EXPECT_LT(final_queue, 10.0);
}

TEST(Environment, RewardFollowsEq15Shape) {
  RaEnvironmentConfig config;
  config.rho = 1.0;
  config.beta = 20.0;
  config.reward_scale = 1.0;  // assert the raw Eq. 15 value
  config.reward_clip = 0.0;
  auto environment = make_env(config);
  environment.set_coordination({0.0, 0.0});
  const auto result = environment.step(equal_action());
  // reward = sum_i (U_i - 0.5 * rho * U_i^2) with zero coordination, no penalty.
  double expected = 0.0;
  for (double u : result.performance) expected += u - 0.5 * u * u;
  EXPECT_NEAR(result.reward, expected, 1e-9);
}

TEST(Environment, OverAllocationPenalized) {
  RaEnvironmentConfig config;
  config.beta = 20.0;
  config.reward_scale = 1.0;
  config.reward_clip = 0.0;
  auto environment = make_env(config);
  auto env2 = make_env(config, 2.0, 1);  // same seed: same arrivals
  const auto modest = environment.step(equal_action());
  const auto greedy = env2.step(std::vector<double>(6, 1.0));  // 2x oversubscribed
  EXPECT_DOUBLE_EQ(modest.constraint_violation, 0.0);
  EXPECT_DOUBLE_EQ(greedy.constraint_violation, 3.0);  // 1 extra unit per resource
  // The physical service is identical (proportional scaling) but the shaped
  // reward charges beta * violation.
  EXPECT_NEAR(greedy.reward, modest.reward - 20.0 * 3.0, 1e-9);
}

TEST(Environment, CoordinationEntersStateNormalized) {
  RaEnvironmentConfig config;
  config.coordination_scale = 50.0;
  auto environment = make_env(config);
  environment.set_coordination({-25.0, 10.0});
  const auto s = environment.state();
  EXPECT_DOUBLE_EQ(s[2], -0.5);
  // Positive z - y clamps to 0: every performance function is <= 0, so a
  // positive target is unreachable and reads as "maximize".
  EXPECT_DOUBLE_EQ(s[3], 0.0);
}

TEST(Environment, CoordinationShiftsRewardTarget) {
  // With U == c/T the quadratic term vanishes; moving c away lowers reward.
  RaEnvironmentConfig config;
  config.arrival_rate = 0.0;  // empty queues -> U = 0
  auto environment = make_env(config);
  environment.set_coordination({0.0, 0.0});
  const double matched = environment.step(equal_action()).reward;
  environment.set_coordination({-100.0, -100.0});
  const double mismatched = environment.step(equal_action()).reward;
  EXPECT_GT(matched, mismatched);
}

TEST(Environment, ArrivalRatesControlLoad) {
  RaEnvironmentConfig config;
  auto environment = make_env(config);
  environment.set_arrival_rates({0.0, 0.0});
  const auto result = environment.step(std::vector<double>(6, 0.0));
  EXPECT_DOUBLE_EQ(result.queue_lengths[0], 0.0);
  EXPECT_THROW(environment.set_arrival_rates({1.0}), std::invalid_argument);
  EXPECT_THROW(environment.set_arrival_rates({-1.0, 1.0}), std::invalid_argument);
}

TEST(Environment, ArrivalProfilesCycle) {
  RaEnvironmentConfig config;
  auto environment = make_env(config);
  // Slice 0 alternates 0 / 20 arrivals; slice 1 silent.
  environment.set_arrival_profiles({{0.0, 20.0}, {0.0, 0.0}});
  const std::vector<double> no_service(6, 0.0);
  double even_growth = 0.0;
  double odd_growth = 0.0;
  double prev = 0.0;
  for (int t = 0; t < 40; ++t) {
    const auto result = environment.step(no_service);
    const double growth = result.queue_lengths[0] - prev;
    prev = result.queue_lengths[0];
    (t % 2 == 0 ? even_growth : odd_growth) += growth;
    EXPECT_DOUBLE_EQ(result.queue_lengths[1], 0.0);
  }
  EXPECT_DOUBLE_EQ(even_growth, 0.0);   // profile bin 0: rate 0
  EXPECT_GT(odd_growth, 100.0);         // profile bin 1: rate 20
}

TEST(Environment, ArrivalProfilesValidated) {
  auto environment = make_env();
  EXPECT_THROW(environment.set_arrival_profiles({{1.0}}), std::invalid_argument);
  EXPECT_THROW(environment.set_arrival_profiles({{1.0}, {}}), std::invalid_argument);
  EXPECT_THROW(environment.set_arrival_profiles({{1.0}, {-2.0}}), std::invalid_argument);
  // Clearing restores static rates.
  environment.set_arrival_profiles({{0.0}, {0.0}});
  environment.set_arrival_profiles({});
  const auto result = environment.step(std::vector<double>(6, 0.0));
  EXPECT_GT(result.queue_lengths[0], 0.0);  // default Poisson(10) is back
}

TEST(Environment, ResetRestartsArrivalProfilePhase) {
  auto environment = make_env();
  environment.set_arrival_profiles({{0.0, 30.0}, {0.0, 0.0}});
  const std::vector<double> no_service(6, 0.0);
  environment.step(no_service);  // consumes bin 0
  environment.reset();
  const auto result = environment.step(no_service);  // bin 0 again: rate 0
  EXPECT_DOUBLE_EQ(result.queue_lengths[0], 0.0);
}

TEST(Environment, ResetClearsQueues) {
  auto environment = make_env();
  environment.step(std::vector<double>(6, 0.0));
  environment.reset();
  EXPECT_EQ(environment.queue(0).length(), 0u);
  EXPECT_EQ(environment.queue(1).length(), 0u);
}

TEST(Environment, DeterministicGivenSeed) {
  auto a = make_env({}, 2.0, 77);
  auto b = make_env({}, 2.0, 77);
  for (int t = 0; t < 20; ++t) {
    const auto ra = a.step(equal_action());
    const auto rb = b.step(equal_action());
    EXPECT_EQ(ra.reward, rb.reward);
    EXPECT_EQ(ra.queue_lengths, rb.queue_lengths);
  }
}

TEST(Environment, ServiceTimePerfFunctionWorks) {
  RaEnvironmentConfig config;
  const auto model = std::make_shared<DirectServiceModel>(prototype_capacity());
  RaEnvironment environment(config, {slice1_profile(), slice2_profile()}, model,
                            make_neg_service_time_perf(), Rng(3));
  const auto result = environment.step(equal_action());
  for (double u : result.performance) EXPECT_LT(u, 0.0);  // -service_time
}

TEST(Environment, AsymmetricDemandShowsInServiceRates) {
  // Giving slice 1 only compute and slice 2 only bandwidth starves both;
  // matching allocations to the demand asymmetry serves both faster.
  auto env_good = make_env({}, 2.0, 5);
  auto env_bad = make_env({}, 2.0, 5);
  // slice 1 traffic-heavy: radio+transport; slice 2 compute-heavy: compute.
  const std::vector<double> matched{0.8, 0.8, 0.2, 0.2, 0.2, 0.8};
  const std::vector<double> inverted{0.2, 0.2, 0.8, 0.8, 0.8, 0.2};
  const auto good = env_good.step(matched);
  const auto bad = env_bad.step(inverted);
  EXPECT_GT(good.service_rates[0], bad.service_rates[0]);
  EXPECT_GT(good.service_rates[1], bad.service_rates[1]);
}

}  // namespace
}  // namespace edgeslice::env
