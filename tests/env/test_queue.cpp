#include "env/queue.h"

#include <gtest/gtest.h>

namespace edgeslice::env {
namespace {

TEST(SliceQueue, StartsEmpty) {
  SliceQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.length(), 0u);
}

TEST(SliceQueue, ZeroCapacityThrows) {
  EXPECT_THROW(SliceQueue(0), std::invalid_argument);
}

TEST(SliceQueue, ArrivalsAccumulate) {
  SliceQueue q;
  EXPECT_EQ(q.arrive(5), 5u);
  EXPECT_EQ(q.arrive(3), 3u);
  EXPECT_EQ(q.length(), 8u);
  EXPECT_EQ(q.total_arrivals(), 8u);
}

TEST(SliceQueue, DropsBeyondMaxLength) {
  SliceQueue q(10);
  EXPECT_EQ(q.arrive(15), 10u);
  EXPECT_EQ(q.length(), 10u);
  EXPECT_EQ(q.dropped(), 5u);
}

TEST(SliceQueue, IntegerServiceRate) {
  SliceQueue q;
  q.arrive(10);
  EXPECT_EQ(q.serve(3.0), 3u);
  EXPECT_EQ(q.length(), 7u);
  EXPECT_EQ(q.total_departures(), 3u);
}

TEST(SliceQueue, FractionalRateAveragesOut) {
  SliceQueue q;
  q.arrive(100);
  std::size_t total = 0;
  for (int i = 0; i < 10; ++i) total += q.serve(2.5);
  EXPECT_EQ(total, 25u);  // credit accumulates exactly
}

TEST(SliceQueue, ServeNeverExceedsBacklog) {
  SliceQueue q;
  q.arrive(2);
  EXPECT_EQ(q.serve(100.0), 2u);
  EXPECT_TRUE(q.empty());
}

TEST(SliceQueue, CreditNotBankableWhileIdle) {
  SliceQueue q;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.serve(5.0), 0u);
  q.arrive(10);
  // No stored credit from the idle intervals: first serve yields exactly 5.
  EXPECT_EQ(q.serve(5.0), 5u);
}

TEST(SliceQueue, CreditClearsWhenDrained) {
  SliceQueue q;
  q.arrive(1);
  q.serve(5.0);  // drains; residual credit must not persist
  q.arrive(1);
  EXPECT_EQ(q.serve(0.4), 0u);  // only 0.4 credit now
}

TEST(SliceQueue, NegativeRateThrows) {
  SliceQueue q;
  EXPECT_THROW(q.serve(-1.0), std::invalid_argument);
}

TEST(SliceQueue, ResetClearsEverything) {
  SliceQueue q(10);
  q.arrive(20);
  q.serve(2.0);
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.dropped(), 0u);
  EXPECT_EQ(q.total_arrivals(), 0u);
  EXPECT_EQ(q.total_departures(), 0u);
}

// Property sweep: long-run departure rate equals min(arrival, service)
// across service rates, and conservation holds exactly.
class QueueRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(QueueRateSweep, LongRunThroughputAndConservation) {
  const double service_rate = GetParam();
  const double arrival_rate = 5.0;
  SliceQueue q(100000);
  std::size_t admitted = 0;
  std::size_t departed = 0;
  const int intervals = 4000;
  for (int t = 0; t < intervals; ++t) {
    admitted += q.arrive(static_cast<std::size_t>(arrival_rate));
    departed += q.serve(service_rate);
  }
  EXPECT_EQ(admitted, departed + q.length());
  const double throughput = static_cast<double>(departed) / intervals;
  EXPECT_NEAR(throughput, std::min(arrival_rate, service_rate),
              0.05 * arrival_rate + 0.1)
      << "service rate " << service_rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, QueueRateSweep,
                         ::testing::Values(0.5, 1.3, 2.5, 4.9, 5.0, 7.7, 25.0));

TEST(SliceQueue, ConservationInvariant) {
  // arrivals admitted = departures + still queued.
  SliceQueue q(50);
  std::size_t admitted = 0;
  std::size_t departed = 0;
  for (int i = 0; i < 100; ++i) {
    admitted += q.arrive(static_cast<std::size_t>(i % 7));
    departed += q.serve(2.7);
  }
  EXPECT_EQ(admitted, departed + q.length());
}

}  // namespace
}  // namespace edgeslice::env
