// Allocation audit of the per-RA hot path: once warm, a full period of
// state_into / decide_into / step_into must perform ZERO heap
// allocations. The audit replaces global operator new with a counting
// wrapper, so it lives in the test_city binary only. Sanitizer builds
// provide their own allocator interposition; the strict-zero assertion
// runs in the plain build (the default ctest tier) and is skipped there.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "common.h"
#include "common/rng.h"
#include "core/policies.h"
#include "env/environment.h"
#include "env/perf.h"

#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__) && \
    !__has_feature(address_sanitizer) && !__has_feature(thread_sanitizer)
#define EDGESLICE_COUNT_ALLOCATIONS 1
#endif

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

#ifdef EDGESLICE_COUNT_ALLOCATIONS
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace edgeslice::env {
namespace {

TEST(EnvHotPathAllocations, WarmStepLoopAllocatesNothing) {
#ifndef EDGESLICE_COUNT_ALLOCATIONS
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  Rng profile_rng(5);
  const auto profiles = bench::make_profiles(4, profile_rng);
  const auto model = bench::make_service_model(profiles);
  RaEnvironmentConfig config;
  config.slices = 4;
  config.intervals_per_period = 6;
  config.arrival_rate = 5.0;
  RaEnvironment environment(config, profiles, model,
                            std::shared_ptr<const PerformanceFunction>(
                                make_queue_power_perf(2.0)),
                            Rng(42));
  core::TaroPolicy policy;

  std::vector<double> state;
  std::vector<double> action;
  StepResult result;
  const auto run_period = [&] {
    for (std::size_t t = 0; t < config.intervals_per_period; ++t) {
      environment.state_into(state);
      policy.decide_into(environment, action);
      environment.step_into(action, result);
    }
  };

  run_period();  // warm-up sizes every scratch buffer
  run_period();

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int period = 0; period < 3; ++period) run_period();
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "warm state_into/decide_into/step_into loop hit the heap";
#endif
}

}  // namespace
}  // namespace edgeslice::env
