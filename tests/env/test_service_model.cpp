#include "env/service_model.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "core/resource_autonomy.h"

namespace edgeslice::env {
namespace {

TEST(Capacity, PrototypeValuesPlausible) {
  const auto cap = prototype_capacity();
  EXPECT_GT(cap.radio_bits_per_second, 1e6);       // Mbps-scale radio
  EXPECT_DOUBLE_EQ(cap.transport_bits_per_second, 80e6);
  EXPECT_DOUBLE_EQ(cap.compute_work_per_second, 51200.0);
}

TEST(Capacity, MeasuredThroughManagersMatchesPrototype) {
  Rng rng(1);
  edgeslice::core::ResourceAutonomy ra(edgeslice::core::prototype_ra_config(0), rng);
  const auto measured = ra.capacity();
  const auto expected = prototype_capacity();
  EXPECT_NEAR(measured.radio_bits_per_second, expected.radio_bits_per_second, 1.0);
  EXPECT_NEAR(measured.transport_bits_per_second, expected.transport_bits_per_second, 1.0);
  EXPECT_NEAR(measured.compute_work_per_second, expected.compute_work_per_second, 1.0);
}

TEST(DirectServiceModel, ValidatesCapacity) {
  RaCapacity cap;  // zeros
  EXPECT_THROW(DirectServiceModel{cap}, std::invalid_argument);
}

TEST(DirectServiceModel, PipelineIsSumOfStages) {
  RaCapacity cap;
  cap.radio_bits_per_second = 100.0;
  cap.transport_bits_per_second = 200.0;
  cap.compute_work_per_second = 50.0;
  DirectServiceModel model(cap);
  AppProfile app;
  app.uplink_bits = 100.0;
  app.compute_work = 25.0;
  // Full allocation: 1 s radio + 0.5 s transport + 0.5 s compute.
  EXPECT_DOUBLE_EQ(model.service_time(app, {1.0, 1.0, 1.0}), 2.0);
  // Halving the radio share doubles the radio stage only.
  EXPECT_DOUBLE_EQ(model.service_time(app, {0.5, 1.0, 1.0}), 3.0);
}

TEST(DirectServiceModel, ZeroAllocationHitsCap) {
  DirectServiceModel model(prototype_capacity());
  EXPECT_DOUBLE_EQ(model.service_time(slice1_profile(), {0.0, 0.5, 0.5}), kServiceTimeCap);
}

TEST(DirectServiceModel, MonotoneInEveryResource) {
  DirectServiceModel model(prototype_capacity());
  const auto app = slice2_profile();
  for (std::size_t k = 0; k < kResources; ++k) {
    Allocation lo{0.5, 0.5, 0.5};
    Allocation hi{0.5, 0.5, 0.5};
    lo[k] = 0.2;
    hi[k] = 0.9;
    EXPECT_GT(model.service_time(app, lo), model.service_time(app, hi)) << "resource " << k;
  }
}

TEST(DirectServiceModel, AllocationOutOfRangeThrows) {
  DirectServiceModel model(prototype_capacity());
  EXPECT_THROW(model.service_time(slice1_profile(), {1.5, 0.5, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(model.service_time(slice1_profile(), {-0.1, 0.5, 0.5}),
               std::invalid_argument);
}

TEST(GridDataset, TenPercentGranularityHas11Cubed) {
  DirectServiceModel truth(prototype_capacity());
  const GridDataset grid(slice1_profile(), truth, 0.1);  // the paper's granularity
  EXPECT_EQ(grid.samples().size(), 11u * 11u * 11u);
}

TEST(GridDataset, ValidatesGranularity) {
  DirectServiceModel truth(prototype_capacity());
  EXPECT_THROW(GridDataset(slice1_profile(), truth, 0.0), std::invalid_argument);
  EXPECT_THROW(GridDataset(slice1_profile(), truth, 1.5), std::invalid_argument);
}

TEST(GridDataset, AdjacentReturnsCellCorners) {
  DirectServiceModel truth(prototype_capacity());
  const GridDataset grid(slice1_profile(), truth, 0.1);
  // The paper's example: [12, 38, 22]% -> corners like [10, 30, 20]%.
  const auto corners = grid.adjacent({0.12, 0.38, 0.22});
  EXPECT_EQ(corners.size(), 8u);
  for (const auto& c : corners) {
    EXPECT_TRUE(c.allocation[0] == 0.1 || std::abs(c.allocation[0] - 0.2) < 1e-12);
    EXPECT_TRUE(std::abs(c.allocation[1] - 0.3) < 1e-12 ||
                std::abs(c.allocation[1] - 0.4) < 1e-12);
  }
}

TEST(GridDataset, AdjacentOnGridPointDeduplicates) {
  DirectServiceModel truth(prototype_capacity());
  const GridDataset grid(slice1_profile(), truth, 0.1);
  const auto corners = grid.adjacent({1.0, 1.0, 1.0});  // boundary corner
  EXPECT_LT(corners.size(), 8u);
  EXPECT_GE(corners.size(), 1u);
}

TEST(LocalLinearModel, InterpolatesBetweenGridPoints) {
  const auto truth = std::make_shared<DirectServiceModel>(prototype_capacity());
  const auto grid = std::make_shared<GridDataset>(slice1_profile(), *truth, 0.1);
  LocalLinearServiceModel model(grid);
  const Allocation query{0.35, 0.45, 0.55};
  const double predicted = model.service_time(slice1_profile(), query);
  const double actual = truth->service_time(slice1_profile(), query);
  // 1/x curvature within a 10% cell is modest: linear fit within ~30%.
  EXPECT_NEAR(predicted / actual, 1.0, 0.3);
}

TEST(LocalLinearModel, ExactOnGridPoints) {
  const auto truth = std::make_shared<DirectServiceModel>(prototype_capacity());
  const auto grid = std::make_shared<GridDataset>(slice2_profile(), *truth, 0.1);
  LocalLinearServiceModel model(grid);
  // Regression through 8 corners isn't guaranteed exact at a corner, but a
  // query at a corner uses that corner in its fit and stays close.
  const Allocation corner{0.5, 0.5, 0.5};
  const double predicted = model.service_time(slice2_profile(), corner);
  const double actual = truth->service_time(slice2_profile(), corner);
  EXPECT_NEAR(predicted / actual, 1.0, 0.35);
}

TEST(LocalLinearModel, PredictionsNonNegativeAndCapped) {
  const auto truth = std::make_shared<DirectServiceModel>(prototype_capacity());
  const auto grid = std::make_shared<GridDataset>(slice1_profile(), *truth, 0.1);
  LocalLinearServiceModel model(grid);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    Allocation a{rng.uniform(), rng.uniform(), rng.uniform()};
    const double t = model.service_time(slice1_profile(), a);
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, kServiceTimeCap);
  }
}

TEST(LocalLinearModel, NullDatasetThrows) {
  EXPECT_THROW(LocalLinearServiceModel(nullptr), std::invalid_argument);
}

TEST(PerProfileLinearModel, DispatchesByProfile) {
  DirectServiceModel truth(prototype_capacity());
  const std::vector<AppProfile> profiles{slice1_profile(), slice2_profile()};
  PerProfileLinearServiceModel model(profiles, truth, 0.2);
  EXPECT_EQ(model.profile_count(), 2u);
  const Allocation a{0.5, 0.5, 0.5};
  // Each profile's prediction should track its own ground truth, which
  // differ strongly between the two archetypes.
  const double p1 = model.service_time(slice1_profile(), a);
  const double p2 = model.service_time(slice2_profile(), a);
  EXPECT_NEAR(p1 / truth.service_time(slice1_profile(), a), 1.0, 0.35);
  EXPECT_NEAR(p2 / truth.service_time(slice2_profile(), a), 1.0, 0.35);
  EXPECT_NE(p1, p2);
}

TEST(PerProfileLinearModel, UnknownProfileThrows) {
  DirectServiceModel truth(prototype_capacity());
  PerProfileLinearServiceModel model({slice1_profile()}, truth, 0.2);
  EXPECT_THROW(model.service_time(slice2_profile(), {0.5, 0.5, 0.5}),
               std::invalid_argument);
}

TEST(PerProfileLinearModel, SharedProfilesDeduplicated) {
  DirectServiceModel truth(prototype_capacity());
  PerProfileLinearServiceModel model({slice1_profile(), slice1_profile()}, truth, 0.2);
  EXPECT_EQ(model.profile_count(), 1u);
}

TEST(PerProfileLinearModel, EmptyProfilesThrow) {
  DirectServiceModel truth(prototype_capacity());
  EXPECT_THROW(PerProfileLinearServiceModel({}, truth, 0.2), std::invalid_argument);
}

}  // namespace
}  // namespace edgeslice::env
