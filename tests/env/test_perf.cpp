#include "env/perf.h"

#include <gtest/gtest.h>

namespace edgeslice::env {
namespace {

TEST(QueuePowerPerf, DefaultAlphaIsSquare) {
  QueuePowerPerf perf;  // alpha = 2, the paper's default
  EXPECT_DOUBLE_EQ(perf.evaluate({5.0, 0.0}), -25.0);
  EXPECT_DOUBLE_EQ(perf.evaluate({0.0, 0.0}), 0.0);
}

TEST(QueuePowerPerf, AlphaSweepOrdering) {
  // Fig. 11(a): larger alpha reports worse performance at the same queue.
  const PerfObservation obs{4.0, 0.0};
  double previous = 0.0;
  for (double alpha : {1.0, 1.5, 2.0, 2.5}) {
    const double u = QueuePowerPerf(alpha).evaluate(obs);
    EXPECT_LT(u, previous);
    previous = u;
  }
}

TEST(QueuePowerPerf, AlphaOneIsLinear) {
  QueuePowerPerf perf(1.0);
  EXPECT_DOUBLE_EQ(perf.evaluate({7.0, 0.0}), -7.0);
}

TEST(QueuePowerPerf, InvalidAlphaThrows) {
  EXPECT_THROW(QueuePowerPerf(0.0), std::invalid_argument);
  EXPECT_THROW(QueuePowerPerf(-1.0), std::invalid_argument);
}

TEST(QueuePowerPerf, NegativeQueueClamped) {
  QueuePowerPerf perf;
  EXPECT_DOUBLE_EQ(perf.evaluate({-3.0, 0.0}), 0.0);
}

TEST(QueuePowerPerf, NameEncodesAlpha) {
  EXPECT_NE(QueuePowerPerf(1.5).name().find("1.5"), std::string::npos);
}

TEST(NegServiceTimePerf, IgnoresQueue) {
  NegServiceTimePerf perf;
  EXPECT_DOUBLE_EQ(perf.evaluate({100.0, 2.0}), -2.0);
  EXPECT_DOUBLE_EQ(perf.evaluate({0.0, 2.0}), -2.0);
}

TEST(NegServiceTimePerf, CapKeepsFinite) {
  NegServiceTimePerf perf(10.0);
  EXPECT_DOUBLE_EQ(perf.evaluate({0.0, 1e9}), -10.0);
  EXPECT_THROW(NegServiceTimePerf(0.0), std::invalid_argument);
}

TEST(PerfFactories, ProduceExpectedTypes) {
  const auto qp = make_queue_power_perf(1.5);
  EXPECT_DOUBLE_EQ(qp->evaluate({4.0, 0.0}), -8.0);
  const auto st = make_neg_service_time_perf();
  EXPECT_DOUBLE_EQ(st->evaluate({1.0, 3.0}), -3.0);
}

}  // namespace
}  // namespace edgeslice::env
