#include "env/app_model.h"

#include <gtest/gtest.h>

namespace edgeslice::env {
namespace {

TEST(AppModel, FrameBitsScaleWithPixels) {
  EXPECT_DOUBLE_EQ(frame_bits(FrameResolution::R100x100), 100 * 100 * 1.15);
  EXPECT_DOUBLE_EQ(frame_bits(FrameResolution::R500x500), 500 * 500 * 1.15);
  EXPECT_GT(frame_bits(FrameResolution::R300x300), frame_bits(FrameResolution::R100x100));
}

TEST(AppModel, YoloWorkGrowsWithModelSize) {
  EXPECT_LT(yolo_work(YoloModel::Y320), yolo_work(YoloModel::Y416));
  EXPECT_LT(yolo_work(YoloModel::Y416), yolo_work(YoloModel::Y608));
}

TEST(AppModel, YoloWorkQuadraticRatio) {
  const double ratio = yolo_work(YoloModel::Y608) / yolo_work(YoloModel::Y320);
  EXPECT_NEAR(ratio, (608.0 * 608.0) / (320.0 * 320.0), 1e-9);
}

TEST(AppModel, Slice1IsTrafficHeavyComputeLight) {
  // Sec. VII-C: slice 1 = 500x500 + YOLO-320.
  const auto p = slice1_profile();
  EXPECT_DOUBLE_EQ(p.uplink_bits, frame_bits(FrameResolution::R500x500));
  EXPECT_DOUBLE_EQ(p.compute_work, yolo_work(YoloModel::Y320));
}

TEST(AppModel, Slice2IsTrafficLightComputeHeavy) {
  const auto p = slice2_profile();
  EXPECT_DOUBLE_EQ(p.uplink_bits, frame_bits(FrameResolution::R100x100));
  EXPECT_DOUBLE_EQ(p.compute_work, yolo_work(YoloModel::Y608));
}

TEST(AppModel, ArchetypesHaveOppositeDemandAsymmetry) {
  const auto s1 = slice1_profile();
  const auto s2 = slice2_profile();
  EXPECT_GT(s1.uplink_bits, 10.0 * s2.uplink_bits);
  EXPECT_GT(s2.compute_work, 2.0 * s1.compute_work);
}

TEST(AppModel, ProfileNamesAreDescriptive) {
  const auto p = make_profile(FrameResolution::R300x300, YoloModel::Y416);
  EXPECT_EQ(p.name, "300x300+YOLO-416");
}

}  // namespace
}  // namespace edgeslice::env
