#include "rl/noise.h"

#include <gtest/gtest.h>

#include <cmath>

namespace edgeslice::rl {
namespace {

TEST(DecayingGaussianNoise, SigmaDecaysPerSample) {
  // The paper: noise starts from N(0,1), decays by 0.9999 per update step.
  DecayingGaussianNoise noise(2, 1.0, 0.9999);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(noise.sigma(), 1.0);
  noise.sample(rng);
  EXPECT_NEAR(noise.sigma(), 0.9999, 1e-12);
  for (int i = 0; i < 99; ++i) noise.sample(rng);
  EXPECT_NEAR(noise.sigma(), std::pow(0.9999, 100), 1e-9);
}

TEST(DecayingGaussianNoise, RespectsFloor) {
  DecayingGaussianNoise noise(1, 1.0, 0.1, 0.5);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) noise.sample(rng);
  EXPECT_DOUBLE_EQ(noise.sigma(), 0.5);
}

TEST(DecayingGaussianNoise, SampleDimension) {
  DecayingGaussianNoise noise(6);
  Rng rng(3);
  EXPECT_EQ(noise.sample(rng).size(), 6u);
}

TEST(DecayingGaussianNoise, InitialSigmaControlsSpread) {
  Rng rng(4);
  DecayingGaussianNoise wide(1, 5.0, 1.0);
  DecayingGaussianNoise narrow(1, 0.01, 1.0);
  double wide_abs = 0.0;
  double narrow_abs = 0.0;
  for (int i = 0; i < 500; ++i) {
    wide_abs += std::abs(wide.sample(rng)[0]);
    narrow_abs += std::abs(narrow.sample(rng)[0]);
  }
  EXPECT_GT(wide_abs, 20.0 * narrow_abs);
}

TEST(DecayingGaussianNoise, ResetRestoresSigma) {
  DecayingGaussianNoise noise(1, 1.0, 0.5);
  Rng rng(5);
  noise.sample(rng);
  noise.reset(2.0);
  EXPECT_DOUBLE_EQ(noise.sigma(), 2.0);
}

TEST(OrnsteinUhlenbeck, StartsAtZeroAndResets) {
  OrnsteinUhlenbeckNoise noise(3);
  Rng rng(6);
  const auto first = noise.sample(rng);
  EXPECT_EQ(first.size(), 3u);
  noise.reset();
  // After reset, the internal state is zero again; one step has mean 0.
  const auto after = noise.sample(rng);
  EXPECT_EQ(after.size(), 3u);
}

TEST(OrnsteinUhlenbeck, MeanRevertsTowardZero) {
  OrnsteinUhlenbeckNoise noise(1, /*theta=*/0.5, /*sigma=*/0.0);
  Rng rng(7);
  // With sigma = 0 the process decays deterministically from its state.
  // Pump state up via a sigma burst first.
  OrnsteinUhlenbeckNoise pumped(1, 0.2, 1.0);
  auto v = pumped.sample(rng);
  (void)v;
  // Deterministic check on the zero-sigma process: state stays 0.
  const auto s = noise.sample(rng);
  EXPECT_DOUBLE_EQ(s[0], 0.0);
}

TEST(OrnsteinUhlenbeck, SamplesAreCorrelated) {
  OrnsteinUhlenbeckNoise noise(1, 0.05, 0.3);
  Rng rng(8);
  double prev = noise.sample(rng)[0];
  double correlation_proxy = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double cur = noise.sample(rng)[0];
    correlation_proxy += (cur > 0) == (prev > 0) ? 1.0 : 0.0;
    prev = cur;
  }
  // OU with small theta keeps its sign most of the time, unlike white noise.
  EXPECT_GT(correlation_proxy / 500.0, 0.8);
}

}  // namespace
}  // namespace edgeslice::rl
