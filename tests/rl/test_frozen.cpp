#include "rl/frozen.h"

#include <gtest/gtest.h>

#include <sstream>

#include "rl/ddpg.h"

namespace edgeslice::rl {
namespace {

nn::Mlp make_actor(Rng& rng) {
  return nn::Mlp({3, 8, 2}, nn::Activation::LeakyRelu, nn::Activation::Sigmoid, rng);
}

TEST(FrozenActor, ActsLikeItsNetwork) {
  Rng rng(1);
  nn::Mlp actor = make_actor(rng);
  FrozenActor frozen(actor, "test");
  const std::vector<double> s{0.1, 0.5, -0.3};
  EXPECT_EQ(frozen.act(s, false), actor.infer_vector(s));
  EXPECT_EQ(frozen.act(s, true), actor.infer_vector(s));  // never explores
  EXPECT_EQ(frozen.name(), "test");
  EXPECT_EQ(frozen.state_dim(), 3u);
  EXPECT_EQ(frozen.action_dim(), 2u);
}

TEST(FrozenActor, ObserveIsNoOp) {
  Rng rng(2);
  FrozenActor frozen(make_actor(rng));
  const std::vector<double> s{0, 0, 0};
  const auto before = frozen.act(s, false);
  frozen.observe(s, {0.5, 0.5}, -1.0, s, false);
  EXPECT_EQ(frozen.act(s, false), before);
  EXPECT_EQ(frozen.update_count(), 0u);
}

TEST(FrozenActor, RoundTripsThroughSerialization) {
  // The bench cache path: train -> save policy network -> load -> freeze.
  Rng rng(3);
  DdpgConfig config;
  config.base.state_dim = 3;
  config.base.action_dim = 2;
  config.base.hidden = 8;
  Ddpg agent(config, rng);
  ASSERT_NE(agent.policy_network(), nullptr);

  std::stringstream stream;
  agent.policy_network()->save(stream);
  FrozenActor frozen(nn::Mlp::load(stream), agent.name());

  const std::vector<double> s{0.4, -0.2, 0.9};
  EXPECT_EQ(frozen.act(s, false), agent.act(s, false));
}

TEST(FrozenActor, AllAgentsExposePolicyNetworks) {
  Rng rng(4);
  AgentConfig config;
  config.state_dim = 3;
  config.action_dim = 2;
  config.hidden = 8;
  for (const Algorithm algorithm : {Algorithm::Ddpg, Algorithm::Sac, Algorithm::Ppo,
                                    Algorithm::Trpo, Algorithm::Vpg}) {
    const auto agent = make_agent(algorithm, config, rng);
    ASSERT_NE(agent->policy_network(), nullptr) << algorithm_name(algorithm);
    EXPECT_EQ(agent->policy_network()->in_dim(), 3u);
    EXPECT_EQ(agent->policy_network()->out_dim(), 2u);
  }
}

}  // namespace
}  // namespace edgeslice::rl
