#include "rl/gaussian_policy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace edgeslice::rl {
namespace {

GaussianPolicy make_policy(Rng& rng) {
  return GaussianPolicy(3, 2, 8, 2, rng, -0.5);
}

TEST(GaussianPolicy, SampleStaysInUnitBox) {
  Rng rng(1);
  GaussianPolicy policy(2, 3, 8, 1, rng, 1.0);  // large sigma -> clipping active
  Rng sampler(2);
  for (int i = 0; i < 200; ++i) {
    const auto a = policy.sample({0.3, -0.2}, sampler);
    for (double v : a) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(GaussianPolicy, LogProbPeaksAtMean) {
  Rng rng(3);
  GaussianPolicy policy = make_policy(rng);
  const std::vector<double> s{0.1, 0.2, 0.3};
  const auto mu = policy.mean_action(s);
  const double at_mean = policy.log_prob(s, mu);
  auto off = mu;
  off[0] += 0.2;
  EXPECT_GT(at_mean, policy.log_prob(s, off));
}

TEST(GaussianPolicy, LogProbMatchesGaussianDensity) {
  Rng rng(4);
  GaussianPolicy policy(1, 1, 4, 1, rng, 0.0);  // sigma = 1
  const std::vector<double> s{0.5};
  const double mu = policy.mean_action(s)[0];
  const double a = mu + 1.0;
  // log N(a; mu, 1) = -0.5 - 0.5 log(2 pi).
  EXPECT_NEAR(policy.log_prob(s, {a}), -0.5 - 0.5 * std::log(2 * M_PI), 1e-9);
}

TEST(GaussianPolicy, BatchLogProbMatchesSingle) {
  Rng rng(5);
  GaussianPolicy policy = make_policy(rng);
  nn::Matrix states{{0.1, 0.2, 0.3}, {0.7, 0.1, 0.4}};
  nn::Matrix actions{{0.5, 0.5}, {0.2, 0.8}};
  const auto batch = policy.log_prob_batch(states, actions);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_NEAR(batch[0], policy.log_prob({0.1, 0.2, 0.3}, {0.5, 0.5}), 1e-12);
  EXPECT_NEAR(batch[1], policy.log_prob({0.7, 0.1, 0.4}, {0.2, 0.8}), 1e-12);
}

// Gradient check: d/dtheta sum_b c_b logp_b against finite differences.
TEST(GaussianPolicy, LogProbGradientMatchesFiniteDifference) {
  Rng rng(6);
  GaussianPolicy policy(2, 2, 5, 1, rng, -0.3);
  nn::Matrix states{{0.2, -0.1}, {0.5, 0.9}, {-0.4, 0.3}};
  nn::Matrix actions{{0.4, 0.6}, {0.1, 0.2}, {0.9, 0.5}};
  const std::vector<double> coeffs{1.0, -2.0, 0.5};

  policy.zero_grad();
  policy.accumulate_logprob_gradient(states, actions, coeffs);
  const auto analytic = policy.flat_gradients();

  const auto objective = [&]() {
    const auto logp = policy.log_prob_batch(states, actions);
    double acc = 0.0;
    for (std::size_t b = 0; b < logp.size(); ++b) acc += coeffs[b] * logp[b];
    return acc;
  };
  const auto theta = policy.flat_parameters();
  const double eps = 1e-6;
  for (std::size_t i = 0; i < theta.size(); i += 5) {
    auto up = theta;
    auto down = theta;
    up[i] += eps;
    down[i] -= eps;
    policy.set_flat_parameters(up);
    const double lu = objective();
    policy.set_flat_parameters(down);
    const double ld = objective();
    policy.set_flat_parameters(theta);
    EXPECT_NEAR(analytic[i], (lu - ld) / (2 * eps), 1e-4) << "param " << i;
  }
}

// Gradient check for the mean-KL gradient.
TEST(GaussianPolicy, KlGradientMatchesFiniteDifference) {
  Rng rng(7);
  GaussianPolicy policy(2, 2, 5, 1, rng, -0.3);
  nn::Matrix states{{0.2, -0.1}, {0.5, 0.9}};
  const nn::Matrix old_means = policy.mean_batch(states);
  const auto old_log_std = policy.log_std();

  // Perturb the policy so the KL is non-trivial.
  auto theta = policy.flat_parameters();
  Rng jitter(8);
  for (auto& v : theta) v += jitter.normal(0.0, 0.05);
  policy.set_flat_parameters(theta);

  policy.zero_grad();
  policy.accumulate_kl_gradient(old_means, old_log_std, states);
  const auto analytic = policy.flat_gradients();

  const double eps = 1e-6;
  for (std::size_t i = 0; i < theta.size(); i += 7) {
    auto up = theta;
    auto down = theta;
    up[i] += eps;
    down[i] -= eps;
    policy.set_flat_parameters(up);
    const double ku = policy.mean_kl(old_means, old_log_std, states);
    policy.set_flat_parameters(down);
    const double kd = policy.mean_kl(old_means, old_log_std, states);
    policy.set_flat_parameters(theta);
    EXPECT_NEAR(analytic[i], (ku - kd) / (2 * eps), 1e-4) << "param " << i;
  }
}

TEST(GaussianPolicy, KlIsZeroAtOldPolicy) {
  Rng rng(9);
  GaussianPolicy policy = make_policy(rng);
  nn::Matrix states{{0.1, 0.2, 0.3}};
  const auto old_means = policy.mean_batch(states);
  EXPECT_NEAR(policy.mean_kl(old_means, policy.log_std(), states), 0.0, 1e-12);
}

TEST(GaussianPolicy, KlPositiveAwayFromOldPolicy) {
  Rng rng(10);
  GaussianPolicy policy = make_policy(rng);
  nn::Matrix states{{0.1, 0.2, 0.3}, {0.9, -0.5, 0.0}};
  const auto old_means = policy.mean_batch(states);
  const auto old_log_std = policy.log_std();
  auto theta = policy.flat_parameters();
  for (auto& v : theta) v += 0.1;
  policy.set_flat_parameters(theta);
  EXPECT_GT(policy.mean_kl(old_means, old_log_std, states), 0.0);
}

TEST(GaussianPolicy, EntropyGrowsWithLogStd) {
  Rng rng(11);
  GaussianPolicy policy = make_policy(rng);
  const double h0 = policy.entropy();
  policy.set_log_std({0.5, 0.5});
  EXPECT_GT(policy.entropy(), h0);
}

TEST(GaussianPolicy, EntropyGradientIsOnePerDim) {
  Rng rng(12);
  GaussianPolicy policy = make_policy(rng);
  policy.zero_grad();
  policy.accumulate_entropy_gradient(2.0);
  const auto g = policy.flat_gradients();
  // The last action_dim entries are the log-std gradient.
  EXPECT_DOUBLE_EQ(g[g.size() - 1], 2.0);
  EXPECT_DOUBLE_EQ(g[g.size() - 2], 2.0);
}

TEST(GaussianPolicy, FlatParameterRoundTrip) {
  Rng rng(13);
  GaussianPolicy policy = make_policy(rng);
  auto theta = policy.flat_parameters();
  EXPECT_EQ(theta.size(), policy.parameter_count());
  theta.back() = -1.25;  // log_std entry
  policy.set_flat_parameters(theta);
  EXPECT_DOUBLE_EQ(policy.log_std().back(), -1.25);
}

TEST(GaussianPolicy, AddLogStdGradientValidates) {
  Rng rng(14);
  GaussianPolicy policy = make_policy(rng);
  EXPECT_THROW(policy.add_log_std_gradient({1.0}), std::invalid_argument);
  policy.zero_grad();
  policy.add_log_std_gradient({1.0, 2.0});
  const auto g = policy.flat_gradients();
  EXPECT_DOUBLE_EQ(g[g.size() - 2], 1.0);
  EXPECT_DOUBLE_EQ(g[g.size() - 1], 2.0);
}

}  // namespace
}  // namespace edgeslice::rl
