#include "rl/rollout.h"

#include <gtest/gtest.h>

namespace edgeslice::rl {
namespace {

TEST(RolloutBuffer, PushUntilFull) {
  RolloutBuffer buffer(2, 1, 1);
  EXPECT_FALSE(buffer.full());
  buffer.push({0.0}, {0.5}, 1.0, 0.0, -1.0, false);
  buffer.push({1.0}, {0.5}, 1.0, 0.0, -1.0, false);
  EXPECT_TRUE(buffer.full());
  EXPECT_THROW(buffer.push({2.0}, {0.5}, 1.0, 0.0, -1.0, false), std::logic_error);
}

TEST(RolloutBuffer, ClearResets) {
  RolloutBuffer buffer(2, 1, 1);
  buffer.push({0.0}, {0.5}, 1.0, 0.0, -1.0, false);
  buffer.clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_FALSE(buffer.full());
}

// Hand-computed GAE on a 3-step rollout, no normalization.
TEST(RolloutBuffer, GaeMatchesHandComputation) {
  RolloutBuffer buffer(3, 1, 1);
  const double gamma = 0.9;
  const double lambda = 0.8;
  // rewards 1, 2, 3; values 0.5, 0.6, 0.7; bootstrap 0.8; no terminals.
  buffer.push({0.0}, {0.0}, 1.0, 0.5, 0.0, false);
  buffer.push({0.0}, {0.0}, 2.0, 0.6, 0.0, false);
  buffer.push({0.0}, {0.0}, 3.0, 0.7, 0.0, false);
  buffer.finish(0.8, gamma, lambda, /*normalize=*/false);

  const double d2 = 3.0 + gamma * 0.8 - 0.7;
  const double d1 = 2.0 + gamma * 0.7 - 0.6;
  const double d0 = 1.0 + gamma * 0.6 - 0.5;
  const double a2 = d2;
  const double a1 = d1 + gamma * lambda * a2;
  const double a0 = d0 + gamma * lambda * a1;
  EXPECT_NEAR(buffer.advantages()[2], a2, 1e-12);
  EXPECT_NEAR(buffer.advantages()[1], a1, 1e-12);
  EXPECT_NEAR(buffer.advantages()[0], a0, 1e-12);
  EXPECT_NEAR(buffer.returns()[0], a0 + 0.5, 1e-12);
}

TEST(RolloutBuffer, TerminalCutsBootstrap) {
  RolloutBuffer buffer(2, 1, 1);
  buffer.push({0.0}, {0.0}, 1.0, 0.0, 0.0, true);  // terminal at step 0
  buffer.push({0.0}, {0.0}, 5.0, 0.0, 0.0, false);
  buffer.finish(100.0, 0.99, 0.95, false);
  // Step 0's advantage must not see step 1's value or the bootstrap.
  EXPECT_NEAR(buffer.advantages()[0], 1.0, 1e-12);
}

TEST(RolloutBuffer, NormalizationZeroMeanUnitStd) {
  RolloutBuffer buffer(4, 1, 1);
  for (int i = 0; i < 4; ++i) {
    buffer.push({0.0}, {0.0}, static_cast<double>(i), 0.0, 0.0, false);
  }
  buffer.finish(0.0, 0.9, 0.9, true);
  double mean = 0.0;
  for (double a : buffer.advantages()) mean += a / 4.0;
  EXPECT_NEAR(mean, 0.0, 1e-9);
}

TEST(RolloutBuffer, StoresStatesAndActions) {
  RolloutBuffer buffer(2, 2, 1);
  buffer.push({1.0, 2.0}, {0.3}, 0.0, 0.0, 0.0, false);
  EXPECT_DOUBLE_EQ(buffer.states()(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(buffer.actions()(0, 0), 0.3);
}

TEST(RolloutBuffer, ZeroCapacityThrows) {
  EXPECT_THROW(RolloutBuffer(0, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace edgeslice::rl
