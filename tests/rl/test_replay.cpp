#include "rl/replay_buffer.h"

#include <gtest/gtest.h>

namespace edgeslice::rl {
namespace {

Transition make_transition(double tag) {
  return Transition{{tag, tag}, {tag}, tag, {tag + 1, tag + 1}, false};
}

TEST(ReplayBuffer, ZeroCapacityThrows) {
  EXPECT_THROW(ReplayBuffer(0), std::invalid_argument);
}

TEST(ReplayBuffer, GrowsUntilCapacity) {
  ReplayBuffer buffer(3);
  EXPECT_TRUE(buffer.empty());
  buffer.push(make_transition(1));
  buffer.push(make_transition(2));
  EXPECT_EQ(buffer.size(), 2u);
  buffer.push(make_transition(3));
  buffer.push(make_transition(4));  // evicts the oldest
  EXPECT_EQ(buffer.size(), 3u);
}

TEST(ReplayBuffer, RingEvictsOldestFirst) {
  ReplayBuffer buffer(2);
  buffer.push(make_transition(1));
  buffer.push(make_transition(2));
  buffer.push(make_transition(3));  // overwrites slot 0
  EXPECT_DOUBLE_EQ(buffer.at(0).reward, 3.0);
  EXPECT_DOUBLE_EQ(buffer.at(1).reward, 2.0);
}

TEST(ReplayBuffer, SampleEmptyThrows) {
  ReplayBuffer buffer(4);
  Rng rng(1);
  EXPECT_THROW(buffer.sample(2, rng), std::logic_error);
}

TEST(ReplayBuffer, SampleZeroBatchThrows) {
  ReplayBuffer buffer(4);
  buffer.push(make_transition(1));
  Rng rng(1);
  EXPECT_THROW(buffer.sample(0, rng), std::invalid_argument);
}

TEST(ReplayBuffer, SampleShapes) {
  ReplayBuffer buffer(10);
  for (int i = 0; i < 5; ++i) buffer.push(make_transition(i));
  Rng rng(2);
  const Batch batch = buffer.sample(4, rng);
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch.states.rows(), 4u);
  EXPECT_EQ(batch.states.cols(), 2u);
  EXPECT_EQ(batch.actions.cols(), 1u);
  EXPECT_EQ(batch.next_states.cols(), 2u);
}

TEST(ReplayBuffer, OversizedRequestClampsWithoutDuplicates) {
  ReplayBuffer buffer(10);
  for (int i = 0; i < 5; ++i) buffer.push(make_transition(i));
  Rng rng(2);
  // Requesting more than stored clamps to the buffer size and yields each
  // transition exactly once (no silent with-replacement duplicates).
  const Batch batch = buffer.sample(8, rng);
  ASSERT_EQ(batch.size(), 5u);
  std::vector<int> counts(5, 0);
  for (std::size_t b = 0; b < batch.size(); ++b) {
    ++counts[static_cast<int>(batch.rewards[b])];
  }
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(ReplayBuffer, FullBufferBatchIsAPermutation) {
  ReplayBuffer buffer(6);
  for (int i = 0; i < 6; ++i) buffer.push(make_transition(i));
  Rng rng(7);
  const Batch batch = buffer.sample(6, rng);
  ASSERT_EQ(batch.size(), 6u);
  std::vector<int> counts(6, 0);
  for (std::size_t b = 0; b < batch.size(); ++b) {
    ++counts[static_cast<int>(batch.rewards[b])];
  }
  for (int c : counts) EXPECT_EQ(c, 1);
  // The order is seeded: the same stream reproduces the same permutation.
  Rng rng_again(7);
  const Batch again = buffer.sample(6, rng_again);
  EXPECT_EQ(batch.rewards, again.rewards);
}

TEST(ReplayBuffer, SampleRowsAreStoredTransitions) {
  ReplayBuffer buffer(4);
  buffer.push(make_transition(7));
  buffer.push(make_transition(7));
  Rng rng(3);
  const Batch batch = buffer.sample(1, rng);
  for (std::size_t b = 0; b < batch.size(); ++b) {
    EXPECT_DOUBLE_EQ(batch.rewards[b], 7.0);
    EXPECT_DOUBLE_EQ(batch.states(b, 0), 7.0);
    EXPECT_DOUBLE_EQ(batch.next_states(b, 0), 8.0);
  }
}

TEST(ReplayBuffer, DoneFlagRoundTrips) {
  ReplayBuffer buffer(2);
  Transition t = make_transition(1);
  t.done = true;
  buffer.push(t);
  Rng rng(4);
  const Batch batch = buffer.sample(1, rng);
  EXPECT_TRUE(batch.done[0]);
}

TEST(ReplayBuffer, SingleTransitionFullBatch) {
  ReplayBuffer buffer(2);
  buffer.push(make_transition(3));
  Rng rng(5);
  // batch == size == 1: the degenerate without-replacement path.
  const Batch batch = buffer.sample(1, rng);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_DOUBLE_EQ(batch.rewards[0], 3.0);
}

}  // namespace
}  // namespace edgeslice::rl
