// Learning tests for all five training techniques (Fig. 10b's lineup).
//
// The task is a contextual continuous bandit: state s ~ U(0,1)^2, optimal
// action a* = (s0, 1 - s1), reward = -||a - a*||^2. An agent that learns
// should reach clearly higher reward than a random policy (~-0.33 expected
// per dimension pair under uniform actions).
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "rl/agent.h"
#include "rl/ddpg.h"
#include "rl/ppo.h"
#include "rl/sac.h"
#include "rl/trpo.h"
#include "rl/vpg.h"

namespace edgeslice::rl {
namespace {

double target0(const std::vector<double>& s) { return s[0]; }
double target1(const std::vector<double>& s) { return 1.0 - s[1]; }

double bandit_reward(const std::vector<double>& s, const std::vector<double>& a) {
  const double d0 = a[0] - target0(s);
  const double d1 = a[1] - target1(s);
  return -(d0 * d0 + d1 * d1);
}

/// Run `steps` of interaction, returning the agent for evaluation.
void train_bandit(Agent& agent, std::size_t steps, Rng& rng) {
  std::vector<double> s{rng.uniform(), rng.uniform()};
  for (std::size_t i = 0; i < steps; ++i) {
    const auto a = agent.act(s, /*explore=*/true);
    const double r = bandit_reward(s, a);
    std::vector<double> s2{rng.uniform(), rng.uniform()};
    agent.observe(s, a, r, s2, false);
    s = s2;
  }
}

double evaluate_bandit(Agent& agent, Rng& rng, std::size_t episodes = 200) {
  double total = 0.0;
  for (std::size_t i = 0; i < episodes; ++i) {
    const std::vector<double> s{rng.uniform(), rng.uniform()};
    total += bandit_reward(s, agent.act(s, /*explore=*/false));
  }
  return total / static_cast<double>(episodes);
}

AgentConfig small_config() {
  AgentConfig config;
  config.state_dim = 2;
  config.action_dim = 2;
  config.hidden = 32;
  config.hidden_layers = 2;
  config.gamma = 0.0;  // bandit: no bootstrapping needed
  return config;
}

TEST(Ddpg, LearnsContextualBandit) {
  Rng rng(42);
  DdpgConfig config;
  config.base = small_config();
  config.batch_size = 64;
  config.warmup = 128;
  config.noise_decay = 0.999;
  Ddpg agent(config, rng);
  train_bandit(agent, 3000, rng);
  Rng eval(7);
  EXPECT_GT(evaluate_bandit(agent, eval), -0.05);
  EXPECT_GT(agent.update_count(), 1000u);
}

TEST(Ddpg, ExplorationNoiseChangesActions) {
  Rng rng(1);
  DdpgConfig config;
  config.base = small_config();
  Ddpg agent(config, rng);
  const std::vector<double> s{0.5, 0.5};
  const auto greedy = agent.act(s, false);
  const auto noisy = agent.act(s, true);
  EXPECT_EQ(agent.act(s, false), greedy);  // deterministic without noise
  EXPECT_NE(noisy, greedy);
}

TEST(Ddpg, ActionsAreInUnitBox) {
  Rng rng(2);
  DdpgConfig config;
  config.base = small_config();
  Ddpg agent(config, rng);
  for (int i = 0; i < 50; ++i) {
    for (double v : agent.act({0.1, 0.9}, true)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(Ddpg, RequiresDimensions) {
  Rng rng(3);
  DdpgConfig config;  // dims left at 0
  EXPECT_THROW(Ddpg(config, rng), std::invalid_argument);
}

TEST(Ddpg, CriticLossEventuallyDrops) {
  Rng rng(4);
  DdpgConfig config;
  config.base = small_config();
  config.batch_size = 64;
  config.warmup = 64;
  Ddpg agent(config, rng);
  train_bandit(agent, 500, rng);
  const double early = agent.last_critic_loss();
  train_bandit(agent, 2500, rng);
  EXPECT_LT(agent.last_critic_loss(), early * 2.0 + 0.5);  // no divergence
}

TEST(Sac, LearnsContextualBandit) {
  Rng rng(42);
  SacConfig config;
  config.base = small_config();
  config.batch_size = 64;
  config.warmup = 128;
  config.alpha = 0.02;
  Sac agent(config, rng);
  train_bandit(agent, 3000, rng);
  Rng eval(7);
  EXPECT_GT(evaluate_bandit(agent, eval), -0.08);
}

TEST(Ppo, LearnsContextualBandit) {
  Rng rng(42);
  PpoConfig config;
  config.base = small_config();
  config.horizon = 128;
  config.epochs = 8;
  config.minibatch = 32;
  Ppo agent(config, rng);
  train_bandit(agent, 6000, rng);
  Rng eval(7);
  EXPECT_GT(evaluate_bandit(agent, eval), -0.08);
  EXPECT_GT(agent.update_count(), 10u);
}

TEST(Vpg, ImprovesOverInitialPolicy) {
  Rng rng(42);
  VpgConfig config;
  config.base = small_config();
  config.horizon = 128;
  Vpg agent(config, rng);
  Rng eval(7);
  const double before = evaluate_bandit(agent, eval);
  train_bandit(agent, 8000, rng);
  Rng eval2(7);
  EXPECT_GT(evaluate_bandit(agent, eval2), before + 0.01);
}

TEST(Trpo, ImprovesOverInitialPolicy) {
  Rng rng(42);
  TrpoConfig config;
  config.base = small_config();
  config.horizon = 128;
  config.max_kl = 0.02;
  Trpo agent(config, rng);
  Rng eval(7);
  const double before = evaluate_bandit(agent, eval);
  train_bandit(agent, 6000, rng);
  Rng eval2(7);
  EXPECT_GT(evaluate_bandit(agent, eval2), before + 0.01);
  EXPECT_GT(agent.update_count(), 10u);
}

TEST(AgentFactory, BuildsEveryAlgorithm) {
  Rng rng(5);
  for (const Algorithm alg : {Algorithm::Ddpg, Algorithm::Sac, Algorithm::Ppo,
                              Algorithm::Trpo, Algorithm::Vpg}) {
    const auto agent = make_agent(alg, small_config(), rng);
    ASSERT_NE(agent, nullptr);
    EXPECT_EQ(agent->name(), algorithm_name(alg));
    EXPECT_EQ(agent->state_dim(), 2u);
    EXPECT_EQ(agent->action_dim(), 2u);
    EXPECT_EQ(agent->act({0.5, 0.5}, false).size(), 2u);
  }
}

TEST(AgentFactory, NamesMatchPaper) {
  EXPECT_STREQ(algorithm_name(Algorithm::Ddpg), "DDPG");
  EXPECT_STREQ(algorithm_name(Algorithm::Sac), "SAC");
  EXPECT_STREQ(algorithm_name(Algorithm::Ppo), "PPO");
  EXPECT_STREQ(algorithm_name(Algorithm::Trpo), "TRPO");
  EXPECT_STREQ(algorithm_name(Algorithm::Vpg), "VPG");
}

}  // namespace
}  // namespace edgeslice::rl
