# docs-check: keep FORMATS.md (the normative on-disk format spec) in sync
# with the format versions the code implements.
#
# Run as: cmake -DREPO_ROOT=<repo> -P docs_check.cmake
# Fails when src/ckpt/format.h bumps kCkptFormatVersion (or src/ipc/frame.h
# bumps kFrameFormatVersion) without FORMATS.md documenting the same
# version, or when FORMATS.md stops covering one of the artifact families
# it claims to spec.

if(NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "docs_check: pass -DREPO_ROOT=<repository root>")
endif()

set(format_header "${REPO_ROOT}/src/ckpt/format.h")
set(formats_doc "${REPO_ROOT}/FORMATS.md")

if(NOT EXISTS "${format_header}")
  message(FATAL_ERROR "docs_check: ${format_header} not found")
endif()
if(NOT EXISTS "${formats_doc}")
  message(FATAL_ERROR "docs_check: ${formats_doc} not found — FORMATS.md is the "
                      "normative spec of every on-disk artifact and must exist")
endif()

# Extract the version constant from the header.
file(READ "${format_header}" header_text)
if(NOT header_text MATCHES "kCkptFormatVersion = ([0-9]+)")
  message(FATAL_ERROR "docs_check: kCkptFormatVersion not found in ${format_header}")
endif()
set(code_version "${CMAKE_MATCH_1}")

# FORMATS.md must state the same version, in the exact phrase the spec
# uses ("checkpoint format version N").
file(READ "${formats_doc}" doc_text)
if(NOT doc_text MATCHES "checkpoint format version ${code_version}")
  message(FATAL_ERROR
      "docs_check: src/ckpt/format.h implements checkpoint format version "
      "${code_version}, but FORMATS.md does not say \"checkpoint format version "
      "${code_version}\" — update the spec alongside the code")
endif()

# Same coupling for the coordinator <-> worker wire protocol: the frame
# header lives in src/ipc/frame.h and FORMATS.md must state the version
# it implements ("wire frame format version N").
set(frame_header "${REPO_ROOT}/src/ipc/frame.h")
if(NOT EXISTS "${frame_header}")
  message(FATAL_ERROR "docs_check: ${frame_header} not found")
endif()
file(READ "${frame_header}" frame_text)
if(NOT frame_text MATCHES "kFrameFormatVersion = ([0-9]+)")
  message(FATAL_ERROR "docs_check: kFrameFormatVersion not found in ${frame_header}")
endif()
set(frame_version "${CMAKE_MATCH_1}")
if(NOT doc_text MATCHES "wire frame format version ${frame_version}")
  message(FATAL_ERROR
      "docs_check: src/ipc/frame.h implements wire frame format version "
      "${frame_version}, but FORMATS.md does not say \"wire frame format "
      "version ${frame_version}\" — update the spec alongside the code")
endif()

# Every FrameType the wire protocol defines must appear by name in
# FORMATS.md (the Sec. 7.2 types table) — a frame type cannot be
# appended to src/ipc/frame.h without the spec documenting it.
if(NOT frame_text MATCHES "enum class FrameType[^{]*{([^}]*)}")
  message(FATAL_ERROR "docs_check: FrameType enum not found in ${frame_header}")
endif()
string(REGEX MATCHALL "([A-Za-z0-9_]+) = [0-9]+" frame_type_tokens "${CMAKE_MATCH_1}")
if(NOT frame_type_tokens)
  message(FATAL_ERROR "docs_check: FrameType enum is empty in ${frame_header}")
endif()
set(frame_types "")
foreach(token ${frame_type_tokens})
  string(REGEX REPLACE " = [0-9]+" "" token "${token}")
  list(APPEND frame_types "${token}")
  if(NOT doc_text MATCHES "${token}")
    message(FATAL_ERROR
        "docs_check: frame type \"${token}\" (FrameType in src/ipc/frame.h) is "
        "not mentioned in FORMATS.md — the Sec. 7.2 frame-type table must list "
        "every type by name")
  endif()
endforeach()
list(LENGTH frame_types frame_type_count)

# Every artifact family the repo writes must have a section in the spec.
foreach(family
    "ESCK"               # checkpoint container
    "ESFR"               # coordinator <-> worker wire frame
    "mlp v1"             # legacy agent-cache text format
    "JSON"               # observability snapshot (metrics + spans + events)
    "JSONL"              # flight-recorder event stream
    "CSV")               # trace datasets
  if(NOT doc_text MATCHES "${family}")
    message(FATAL_ERROR
        "docs_check: FORMATS.md no longer mentions \"${family}\" — every on-disk "
        "artifact family must stay specified")
  endif()
endforeach()

# The GEMM backend selector: EXPERIMENTS.md must document exactly the
# mode strings src/nn/gemm.h accepts (kGemmModeNames), in the canonical
# "EDGESLICE_GEMM=<m1>|<m2>|..." phrase, so a renamed or added mode
# cannot land without its documentation.
set(gemm_header "${REPO_ROOT}/src/nn/gemm.h")
set(experiments_doc "${REPO_ROOT}/EXPERIMENTS.md")
if(NOT EXISTS "${gemm_header}")
  message(FATAL_ERROR "docs_check: ${gemm_header} not found")
endif()
if(NOT EXISTS "${experiments_doc}")
  message(FATAL_ERROR "docs_check: ${experiments_doc} not found")
endif()
file(READ "${gemm_header}" gemm_text)
if(NOT gemm_text MATCHES "kGemmModeNames\\[\\] = {([^}]*)}")
  message(FATAL_ERROR "docs_check: kGemmModeNames not found in ${gemm_header}")
endif()
string(REGEX MATCHALL "\"([a-z0-9]+)\"" gemm_mode_tokens "${CMAKE_MATCH_1}")
set(gemm_modes "")
foreach(token ${gemm_mode_tokens})
  string(REPLACE "\"" "" token "${token}")
  list(APPEND gemm_modes "${token}")
endforeach()
list(JOIN gemm_modes "|" gemm_mode_phrase)
# '|' is alternation in CMake regex; match the literal phrase.
string(REPLACE "|" "\\|" gemm_mode_pattern "${gemm_mode_phrase}")
file(READ "${experiments_doc}" experiments_text)
if(NOT experiments_text MATCHES "EDGESLICE_GEMM=${gemm_mode_pattern}")
  message(FATAL_ERROR
      "docs_check: src/nn/gemm.h accepts EDGESLICE_GEMM modes "
      "\"${gemm_mode_phrase}\", but EXPERIMENTS.md does not say "
      "\"EDGESLICE_GEMM=${gemm_mode_phrase}\" — update the docs alongside "
      "kGemmModeNames")
endif()

# The city bench's report schema: every field bench/city_scale.cpp emits
# into BENCH_city.json (the kCityBenchFields table, which main() verifies
# against the actual emission) must be documented in EXPERIMENTS.md as
# `field`, so a field cannot be added, renamed, or dropped without the
# docs following.
set(city_bench "${REPO_ROOT}/bench/city_scale.cpp")
if(NOT EXISTS "${city_bench}")
  message(FATAL_ERROR "docs_check: ${city_bench} not found")
endif()
file(READ "${city_bench}" city_text)
if(NOT city_text MATCHES "kCityBenchFields\\[\\] = {([^}]*)}")
  message(FATAL_ERROR "docs_check: kCityBenchFields not found in ${city_bench}")
endif()
string(REGEX MATCHALL "\"([a-z0-9_]+)\"" city_field_tokens "${CMAKE_MATCH_1}")
if(NOT city_field_tokens)
  message(FATAL_ERROR "docs_check: kCityBenchFields is empty in ${city_bench}")
endif()
set(city_fields "")
foreach(token ${city_field_tokens})
  string(REPLACE "\"" "" token "${token}")
  list(APPEND city_fields "${token}")
  if(NOT experiments_text MATCHES "`${token}`")
    message(FATAL_ERROR
        "docs_check: BENCH_city.json field \"${token}\" (kCityBenchFields in "
        "bench/city_scale.cpp) is not documented in EXPERIMENTS.md — every "
        "emitted field must appear there as \\`${token}\\`")
  endif()
endforeach()
list(LENGTH city_fields city_field_count)

# The serving bench's report schema: every field bench/serve_load.cpp
# emits into BENCH_serving.json (the kServeBenchFields table, which
# write_serving_json verifies against the actual emission) must be
# documented in FORMATS.md as `field` — the serving report is a wire
# artifact other tools (bench_ledger) parse, so its schema lives with
# the format specs.
set(serve_bench "${REPO_ROOT}/bench/serve_load.cpp")
if(NOT EXISTS "${serve_bench}")
  message(FATAL_ERROR "docs_check: ${serve_bench} not found")
endif()
file(READ "${serve_bench}" serve_text)
if(NOT serve_text MATCHES "kServeBenchFields\\[\\] = {([^}]*)}")
  message(FATAL_ERROR "docs_check: kServeBenchFields not found in ${serve_bench}")
endif()
string(REGEX MATCHALL "\"([a-z0-9_]+)\"" serve_field_tokens "${CMAKE_MATCH_1}")
if(NOT serve_field_tokens)
  message(FATAL_ERROR "docs_check: kServeBenchFields is empty in ${serve_bench}")
endif()
set(serve_fields "")
foreach(token ${serve_field_tokens})
  string(REPLACE "\"" "" token "${token}")
  list(APPEND serve_fields "${token}")
  if(NOT doc_text MATCHES "`${token}`")
    message(FATAL_ERROR
        "docs_check: BENCH_serving.json field \"${token}\" (kServeBenchFields in "
        "bench/serve_load.cpp) is not documented in FORMATS.md — every emitted "
        "field must appear there as \\`${token}\\`")
  endif()
endforeach()
list(LENGTH serve_fields serve_field_count)

message(STATUS "docs_check: FORMATS.md documents checkpoint format version "
               "${code_version}, wire frame format version ${frame_version}, "
               "all ${frame_type_count} frame types, all "
               "${serve_field_count} BENCH_serving.json fields, and all "
               "artifact families; EXPERIMENTS.md documents "
               "EDGESLICE_GEMM=${gemm_mode_phrase} and all "
               "${city_field_count} BENCH_city.json fields")
