# docs-check: keep FORMATS.md (the normative on-disk format spec) in sync
# with the format versions the code implements.
#
# Run as: cmake -DREPO_ROOT=<repo> -P docs_check.cmake
# Fails when src/ckpt/format.h bumps kCkptFormatVersion (or src/ipc/frame.h
# bumps kFrameFormatVersion) without FORMATS.md documenting the same
# version, or when FORMATS.md stops covering one of the artifact families
# it claims to spec.

if(NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "docs_check: pass -DREPO_ROOT=<repository root>")
endif()

set(format_header "${REPO_ROOT}/src/ckpt/format.h")
set(formats_doc "${REPO_ROOT}/FORMATS.md")

if(NOT EXISTS "${format_header}")
  message(FATAL_ERROR "docs_check: ${format_header} not found")
endif()
if(NOT EXISTS "${formats_doc}")
  message(FATAL_ERROR "docs_check: ${formats_doc} not found — FORMATS.md is the "
                      "normative spec of every on-disk artifact and must exist")
endif()

# Extract the version constant from the header.
file(READ "${format_header}" header_text)
if(NOT header_text MATCHES "kCkptFormatVersion = ([0-9]+)")
  message(FATAL_ERROR "docs_check: kCkptFormatVersion not found in ${format_header}")
endif()
set(code_version "${CMAKE_MATCH_1}")

# FORMATS.md must state the same version, in the exact phrase the spec
# uses ("checkpoint format version N").
file(READ "${formats_doc}" doc_text)
if(NOT doc_text MATCHES "checkpoint format version ${code_version}")
  message(FATAL_ERROR
      "docs_check: src/ckpt/format.h implements checkpoint format version "
      "${code_version}, but FORMATS.md does not say \"checkpoint format version "
      "${code_version}\" — update the spec alongside the code")
endif()

# Same coupling for the coordinator <-> worker wire protocol: the frame
# header lives in src/ipc/frame.h and FORMATS.md must state the version
# it implements ("wire frame format version N").
set(frame_header "${REPO_ROOT}/src/ipc/frame.h")
if(NOT EXISTS "${frame_header}")
  message(FATAL_ERROR "docs_check: ${frame_header} not found")
endif()
file(READ "${frame_header}" frame_text)
if(NOT frame_text MATCHES "kFrameFormatVersion = ([0-9]+)")
  message(FATAL_ERROR "docs_check: kFrameFormatVersion not found in ${frame_header}")
endif()
set(frame_version "${CMAKE_MATCH_1}")
if(NOT doc_text MATCHES "wire frame format version ${frame_version}")
  message(FATAL_ERROR
      "docs_check: src/ipc/frame.h implements wire frame format version "
      "${frame_version}, but FORMATS.md does not say \"wire frame format "
      "version ${frame_version}\" — update the spec alongside the code")
endif()

# Every artifact family the repo writes must have a section in the spec.
foreach(family
    "ESCK"               # checkpoint container
    "ESFR"               # coordinator <-> worker wire frame
    "mlp v1"             # legacy agent-cache text format
    "JSON"               # observability snapshot (metrics + spans + events)
    "JSONL"              # flight-recorder event stream
    "CSV")               # trace datasets
  if(NOT doc_text MATCHES "${family}")
    message(FATAL_ERROR
        "docs_check: FORMATS.md no longer mentions \"${family}\" — every on-disk "
        "artifact family must stay specified")
  endif()
endforeach()

message(STATUS "docs_check: FORMATS.md documents checkpoint format version "
               "${code_version}, wire frame format version ${frame_version}, "
               "and all artifact families")
