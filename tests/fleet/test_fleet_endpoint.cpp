// Telemetry HTTP surface regression tests (ctest label: fleet): every
// endpoint is curled and its response framing checked — HTTP/1.0 status
// line, Content-Type, a Content-Length that matches the body byte count,
// Connection: close — plus the /fleet.json payload and the 404/405
// error paths (405 must carry Allow: GET). The framing is the contract
// external scrapers depend on; it must not drift per-route.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace_span.h"
#include "obs/aggregator.h"
#include "obs/event_log.h"
#include "obs/telemetry_server.h"

namespace edgeslice::obs {
namespace {

class FleetEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    edgeslice::global_metrics().clear();
    edgeslice::global_tracer().clear();
    global_event_log().clear();
    set_fleet_status({});
    set_worker_liveness(0, 0);
  }
  void TearDown() override {
    edgeslice::global_metrics().clear();
    edgeslice::global_tracer().clear();
    global_event_log().clear();
    set_fleet_status({});
    set_worker_liveness(0, 0);
  }
};

struct HttpExchange {
  int status = 0;
  std::string status_line;
  std::map<std::string, std::string> headers;  // keys lowercased
  std::string body;
};

/// One raw request, response parsed into status line / headers / body.
HttpExchange http_request(std::uint16_t port, const std::string& request) {
  HttpExchange exchange;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return exchange;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return exchange;
  }
  ::send(fd, request.data(), request.size(), 0);
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t split = raw.find("\r\n\r\n");
  if (split == std::string::npos) return exchange;
  exchange.body = raw.substr(split + 4);
  const std::string head = raw.substr(0, split);
  std::size_t line_start = 0;
  while (line_start < head.size()) {
    std::size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string::npos) line_end = head.size();
    const std::string line = head.substr(line_start, line_end - line_start);
    if (line_start == 0) {
      exchange.status_line = line;
      if (line.size() > 12) exchange.status = std::atoi(line.c_str() + 9);
    } else {
      const std::size_t colon = line.find(": ");
      if (colon != std::string::npos) {
        std::string key = line.substr(0, colon);
        for (char& c : key) c = static_cast<char>(std::tolower(c));
        exchange.headers[key] = line.substr(colon + 2);
      }
    }
    line_start = line_end + 2;
  }
  return exchange;
}

HttpExchange http_get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

const std::vector<std::string>& all_paths() {
  static const std::vector<std::string> paths{
      "/metrics", "/events.json", "/spans.json", "/fleet.json", "/healthz"};
  return paths;
}

void expect_uniform_framing(const HttpExchange& exchange, const std::string& where) {
  EXPECT_EQ(exchange.status_line.rfind("HTTP/1.0 ", 0), 0u)
      << where << ": " << exchange.status_line;
  ASSERT_TRUE(exchange.headers.count("content-type")) << where;
  ASSERT_TRUE(exchange.headers.count("content-length")) << where;
  EXPECT_EQ(exchange.headers.at("content-length"), std::to_string(exchange.body.size()))
      << where;
  ASSERT_TRUE(exchange.headers.count("connection")) << where;
  EXPECT_EQ(exchange.headers.at("connection"), "close") << where;
}

TEST_F(FleetEndpointTest, EveryEndpointHasUniformResponseFraming) {
  // Non-trivial bodies on every surface so Content-Length is exercised
  // against real payloads, not empty strings.
  edgeslice::global_metrics().counter("worker.periods", {{"worker", "0"}}).set(12);
  {
    auto span = edgeslice::global_tracer().span("fleet.test");
    span.stop();
  }
  global_event_log().record([] {
    Event e;
    e.kind = EventKind::TelemetryGap;
    e.worker = 1;
    return e;
  }());
  std::vector<FleetWorkerStatus> fleet(2);
  fleet[1].slot = 1;
  set_fleet_status(std::move(fleet));

  TelemetryServer server;  // port 0 = ephemeral
  ASSERT_TRUE(server.start());
  for (const std::string& path : all_paths()) {
    const HttpExchange exchange = http_get(server.port(), path);
    EXPECT_EQ(exchange.status, 200) << path;
    expect_uniform_framing(exchange, "GET " + path);
    EXPECT_FALSE(exchange.body.empty()) << path;
  }

  const HttpExchange missing = http_get(server.port(), "/nope");
  EXPECT_EQ(missing.status, 404);
  expect_uniform_framing(missing, "GET /nope");
  EXPECT_EQ(missing.body, "not found\n");
}

TEST_F(FleetEndpointTest, NonGetMethodsGet405WithAllowOnEveryEndpoint) {
  TelemetryServer server;
  ASSERT_TRUE(server.start());
  for (const std::string& path : all_paths()) {
    for (const char* method : {"POST", "PUT", "DELETE", "HEAD"}) {
      const HttpExchange exchange = http_request(
          server.port(), std::string(method) + " " + path + " HTTP/1.0\r\n\r\n");
      EXPECT_EQ(exchange.status, 405) << method << " " << path;
      expect_uniform_framing(exchange, std::string(method) + " " + path);
      ASSERT_TRUE(exchange.headers.count("allow")) << method << " " << path;
      EXPECT_EQ(exchange.headers.at("allow"), "GET");
      EXPECT_EQ(exchange.body, "method not allowed\n");
    }
  }
}

TEST_F(FleetEndpointTest, MalformedRequestLineIs400WithUniformFraming) {
  TelemetryServer server;
  ASSERT_TRUE(server.start());
  const HttpExchange exchange = http_request(server.port(), "garbage\r\n\r\n");
  EXPECT_EQ(exchange.status, 400);
  expect_uniform_framing(exchange, "garbage");
}

TEST_F(FleetEndpointTest, FleetJsonReflectsThePublishedTable) {
  std::vector<FleetWorkerStatus> fleet(2);
  fleet[0].slot = 0;
  fleet[0].alive = true;
  fleet[0].pid = 1234;
  fleet[0].ras = {0, 1};
  fleet[1].slot = 1;
  fleet[1].alive = false;
  fleet[1].restarts = 3;
  set_fleet_status(std::move(fleet));

  TelemetryServer server;
  ASSERT_TRUE(server.start());
  const HttpExchange exchange = http_get(server.port(), "/fleet.json");
  EXPECT_EQ(exchange.status, 200);
  EXPECT_EQ(exchange.headers.at("content-type"), "application/json");
  EXPECT_NE(exchange.body.find("\"total\": 2"), std::string::npos) << exchange.body;
  EXPECT_NE(exchange.body.find("\"alive\": 1"), std::string::npos) << exchange.body;
  EXPECT_NE(exchange.body.find("\"pid\": 1234"), std::string::npos) << exchange.body;
  EXPECT_NE(exchange.body.find("\"restarts\": 3"), std::string::npos) << exchange.body;
  EXPECT_NE(exchange.body.find("\"ras\": [0, 1]"), std::string::npos) << exchange.body;
  EXPECT_NE(exchange.body.find("\"last_snapshot_age_s\": null"), std::string::npos)
      << exchange.body;
}

TEST_F(FleetEndpointTest, LabeledSeriesExportThroughSlashMetrics) {
  auto& registry = edgeslice::global_metrics();
  registry.counter("worker.periods").set(2);  // supervisor's own unlabeled series
  registry.counter("worker.periods", {{"worker", "0"}}).set(5);
  registry.counter("worker.periods", {{"worker", "1"}}).set(7);

  TelemetryServer server;
  ASSERT_TRUE(server.start());
  const HttpExchange exchange = http_get(server.port(), "/metrics");
  EXPECT_EQ(exchange.status, 200);
  // One # TYPE line shared by the unlabeled and labeled variants.
  EXPECT_NE(exchange.body.find("# TYPE worker_periods counter\n"), std::string::npos);
  EXPECT_EQ(exchange.body.find("# TYPE worker_periods counter\n"),
            exchange.body.rfind("# TYPE worker_periods counter\n"));
  EXPECT_NE(exchange.body.find("worker_periods 2\n"), std::string::npos);
  EXPECT_NE(exchange.body.find("worker_periods{worker=\"0\"} 5\n"), std::string::npos);
  EXPECT_NE(exchange.body.find("worker_periods{worker=\"1\"} 7\n"), std::string::npos);
}

}  // namespace
}  // namespace edgeslice::obs
