// TelemetryAggregator semantics (ctest label: fleet): worker labels,
// cumulative-snapshot idempotence, restart base folding, origin-tagged
// event import, span-delta merging, and the fleet status JSON.
#include "obs/aggregator.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace_span.h"
#include "obs/event_log.h"

namespace edgeslice::obs {
namespace {

class AggregatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    edgeslice::global_metrics().clear();
    edgeslice::global_tracer().clear();
    global_event_log().clear();
    set_fleet_status({});
  }
  void TearDown() override {
    edgeslice::global_metrics().clear();
    edgeslice::global_tracer().clear();
    global_event_log().clear();
    set_fleet_status({});
  }
};

MetricsSnapshot counter_snapshot(const std::string& name, std::uint64_t value) {
  MetricsSnapshot snapshot;
  snapshot.counters.emplace_back(name, value);
  return snapshot;
}

std::string labeled(const std::string& name, std::size_t slot) {
  return name + encode_metric_labels({{"worker", std::to_string(slot)}});
}

std::size_t gap_count_for(std::size_t slot) {
  std::size_t gaps = 0;
  for (const Event& e : global_event_log().snapshot()) {
    if (e.kind == EventKind::TelemetryGap && e.worker == slot) ++gaps;
  }
  return gaps;
}

TEST_F(AggregatorTest, MetricsLandUnderWorkerLabelOnly) {
  TelemetryAggregator aggregator;
  aggregator.reset(2);
  MetricsSnapshot snapshot = counter_snapshot("worker.periods", 5);
  snapshot.gauges.emplace_back("queue.depth", 2.5);
  aggregator.on_metrics(1, snapshot);

  auto& registry = edgeslice::global_metrics();
  const auto counters = registry.counter_names();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0], labeled("worker.periods", 1));
  EXPECT_EQ(registry.counter("worker.periods", {{"worker", "1"}}).value(), 5u);
  // The unlabeled series stays untouched (it now exists from the lookup
  // above only if we create it — the snapshot must not have).
  EXPECT_EQ(registry.gauge("queue.depth", {{"worker", "1"}}).value(), 2.5);
  EXPECT_EQ(aggregator.snapshots_merged(1), 1u);
  EXPECT_GE(aggregator.last_snapshot_ts_s(1), 0.0);
  EXPECT_LT(aggregator.last_snapshot_ts_s(0), 0.0);
}

TEST_F(AggregatorTest, CumulativeSnapshotsAreIdempotent) {
  TelemetryAggregator aggregator;
  aggregator.reset(1);
  aggregator.on_metrics(0, counter_snapshot("worker.periods", 7));
  aggregator.on_metrics(0, counter_snapshot("worker.periods", 7));
  EXPECT_EQ(
      edgeslice::global_metrics().counter("worker.periods", {{"worker", "0"}}).value(),
      7u);
  EXPECT_EQ(aggregator.snapshots_merged(0), 2u);
}

TEST_F(AggregatorTest, DeadIncarnationBaseStacksUnderTheRespawn) {
  TelemetryAggregator aggregator;
  aggregator.reset(1);
  aggregator.on_metrics(0, counter_snapshot("worker.periods", 5));
  aggregator.on_worker_lost(0, /*clean=*/false);
  // The respawned incarnation restarts its registry from zero.
  aggregator.on_metrics(0, counter_snapshot("worker.periods", 3));
  EXPECT_EQ(
      edgeslice::global_metrics().counter("worker.periods", {{"worker", "0"}}).value(),
      8u);
  // Losing it again folds the second incarnation too.
  aggregator.on_worker_lost(0, /*clean=*/false);
  aggregator.on_metrics(0, counter_snapshot("worker.periods", 2));
  EXPECT_EQ(
      edgeslice::global_metrics().counter("worker.periods", {{"worker", "0"}}).value(),
      10u);
}

TEST_F(AggregatorTest, UncleanLossRecordsAGapAndCleanLossDoesNot) {
  TelemetryAggregator aggregator;
  aggregator.reset(2);
  aggregator.on_metrics(0, counter_snapshot("worker.periods", 1));
  aggregator.on_metrics(1, counter_snapshot("worker.periods", 1));
  aggregator.on_worker_lost(0, /*clean=*/true);
  EXPECT_EQ(gap_count_for(0), 0u);
  aggregator.on_worker_lost(1, /*clean=*/false);
  EXPECT_EQ(gap_count_for(1), 1u);
}

TEST_F(AggregatorTest, HistogramsMergeAcrossIncarnations) {
  TelemetryAggregator aggregator;
  aggregator.reset(1);

  Histogram first;
  first.observe(1.0);
  first.observe(2.0);
  MetricsSnapshot snapshot;
  snapshot.histograms.emplace_back("worker.ra_period_seconds", first.state());
  aggregator.on_metrics(0, snapshot);
  aggregator.on_worker_lost(0, /*clean=*/false);

  Histogram second;
  second.observe(8.0);
  MetricsSnapshot respawned;
  respawned.histograms.emplace_back("worker.ra_period_seconds", second.state());
  aggregator.on_metrics(0, respawned);

  auto& merged = edgeslice::global_metrics().histogram("worker.ra_period_seconds",
                                                       {{"worker", "0"}});
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_EQ(merged.min(), 1.0);
  EXPECT_EQ(merged.max(), 8.0);
  EXPECT_EQ(merged.total(), 11.0);
}

TEST_F(AggregatorTest, WorkerSideLabelsRecanonicalizeWithTheWorkerAxis) {
  // A worker that already records with labels of its own: the aggregator
  // must parse the display name back apart and re-encode with worker=
  // added, keeping the canonical sorted order.
  TelemetryAggregator aggregator;
  aggregator.reset(3);
  const std::string shipped = "rpc.count" + encode_metric_labels({{"zone", "a"}});
  aggregator.on_metrics(2, counter_snapshot(shipped, 4));
  EXPECT_EQ(edgeslice::global_metrics()
                .counter("rpc.count", {{"zone", "a"}, {"worker", "2"}})
                .value(),
            4u);
}

TEST_F(AggregatorTest, EventsImportTaggedWithTheOriginSlot) {
  TelemetryAggregator aggregator;
  aggregator.reset(2);
  Event shipped;
  shipped.seq = 17;      // the worker's own seq: reassigned on import
  shipped.ts_s = 1.125;  // origin timestamp: preserved
  shipped.period = 3;
  shipped.ra = 1;
  shipped.kind = EventKind::SlaViolation;
  shipped.value = 0.25;
  aggregator.on_events(1, {shipped});

  const auto events = global_event_log().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].worker, 1u);
  EXPECT_EQ(events[0].ts_s, 1.125);
  EXPECT_EQ(events[0].period, 3u);
  EXPECT_EQ(events[0].ra, 1u);
  EXPECT_EQ(events[0].kind, EventKind::SlaViolation);
  EXPECT_EQ(events[0].value, 0.25);
  EXPECT_EQ(aggregator.events_imported(1), 1u);
  EXPECT_EQ(aggregator.events_imported(0), 0u);
}

TEST_F(AggregatorTest, SpanDeltasMergeIntoTheGlobalTracer) {
  TelemetryAggregator aggregator;
  aggregator.reset(2);
  SpanPeriodStats delta;
  delta.path = "worker.ra_period";
  delta.period = 2;
  delta.stats.count = 3;
  delta.stats.total_s = 0.3;
  delta.stats.min_s = 0.05;
  delta.stats.max_s = 0.15;
  aggregator.on_spans(0, {delta});
  SpanPeriodStats other = delta;  // a second worker's share of the period
  other.stats.count = 1;
  other.stats.total_s = 0.2;
  other.stats.min_s = 0.2;
  other.stats.max_s = 0.2;
  aggregator.on_spans(1, {other});

  const auto exported = edgeslice::global_tracer().export_period_stats();
  ASSERT_EQ(exported.size(), 1u);
  EXPECT_EQ(exported[0].path, "worker.ra_period");
  EXPECT_EQ(exported[0].period, 2u);
  EXPECT_EQ(exported[0].stats.count, 4u);
  EXPECT_DOUBLE_EQ(exported[0].stats.total_s, 0.5);
  EXPECT_EQ(exported[0].stats.min_s, 0.05);
  EXPECT_EQ(exported[0].stats.max_s, 0.2);
}

TEST_F(AggregatorTest, FleetStatusJsonRendersLivenessAndNullAges) {
  std::vector<FleetWorkerStatus> fleet(2);
  fleet[0].slot = 0;
  fleet[0].alive = true;
  fleet[0].pid = 4242;
  fleet[0].restarts = 1;
  fleet[0].ras = {0, 2};
  fleet[0].snapshots = 9;
  fleet[0].events = 3;
  fleet[0].last_snapshot_ts_s = 0.0;  // epoch: a huge but non-null age
  fleet[1].slot = 1;
  fleet[1].alive = false;
  fleet[1].last_snapshot_ts_s = -1.0;  // never
  set_fleet_status(std::move(fleet));

  const std::string json = fleet_status_json();
  EXPECT_NE(json.find("\"total\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"alive\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\": 4242"), std::string::npos) << json;
  EXPECT_NE(json.find("\"restarts\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ras\": [0, 2]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"snapshots\": 9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"last_snapshot_age_s\": null"), std::string::npos) << json;
  EXPECT_EQ(json.back(), '\n');

  set_fleet_status({});
  const std::string empty = fleet_status_json();
  EXPECT_NE(empty.find("\"total\": 0"), std::string::npos) << empty;
  EXPECT_NE(empty.find("\"workers\": []"), std::string::npos) << empty;
}

}  // namespace
}  // namespace edgeslice::obs
