// Bench regression ledger tests (ctest label: fleet): the flat-JSON
// scanner, config fingerprinting, JSONL round-trip, tolerance-band diff
// semantics, and the real CLI's exit codes — zero on identical entries,
// nonzero on a synthetic 20% periods/second regression.
#include "bench_ledger_lib.h"

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace edgeslice::tools {
namespace {

/// A miniature BENCH_city.json: config fields, metrics, a nested array
/// and a non-numeric digest the ledger must skip.
std::string city_doc(double periods_per_second, double p99_solve) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"ras\": 100, \"slices_per_ra\": 4, \"periods\": 24,\n"
                " \"seed\": 1, \"threads\": 4,\n"
                " \"slice_violation_rates\": [0.1, 0.2, [0.3]],\n"
                " \"trajectory_digest\": \"abc123\",\n"
                " \"periods_per_second\": %.17g,\n"
                " \"p99_coordinator_solve_seconds\": %.17g,\n"
                " \"wall_seconds\": 10.5}",
                periods_per_second, p99_solve);
  return buf;
}

TEST(BenchLedger, ParseFlatJsonReadsScalarsAndSkipsNested) {
  const auto fields = parse_flat_json(city_doc(640.0, 0.002));
  EXPECT_EQ(fields.at("ras"), "100");
  EXPECT_EQ(fields.at("trajectory_digest"), "abc123");
  EXPECT_EQ(fields.at("wall_seconds"), "10.5");
  EXPECT_EQ(fields.count("slice_violation_rates"), 0u);  // nested: skipped
  EXPECT_THROW(parse_flat_json("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(parse_flat_json("[1, 2]"), std::runtime_error);
  EXPECT_THROW(parse_flat_json("{\"a\": 1"), std::runtime_error);
}

TEST(BenchLedger, FingerprintCoversConfigOnly) {
  const BenchEntry a = make_entry(city_doc(640.0, 0.002), "sha1", "city");
  const BenchEntry b = make_entry(city_doc(320.0, 0.009), "sha2", "city");
  EXPECT_EQ(a.fingerprint, b.fingerprint);  // metrics differ, config equal

  std::string other = city_doc(640.0, 0.002);
  const std::size_t pos = other.find("\"ras\": 100");
  other.replace(pos, 10, "\"ras\": 200");
  EXPECT_NE(make_entry(other, "sha1", "city").fingerprint, a.fingerprint);
}

TEST(BenchLedger, MakeEntrySplitsConfigFromMetrics) {
  const BenchEntry entry = make_entry(city_doc(640.0, 0.002), "deadbeef", "city");
  EXPECT_EQ(entry.sha, "deadbeef");
  EXPECT_EQ(entry.config.at("ras"), "100");
  EXPECT_EQ(entry.config.at("threads"), "4");
  EXPECT_EQ(entry.metrics.at("periods_per_second"), 640.0);
  EXPECT_EQ(entry.metrics.at("wall_seconds"), 10.5);
  EXPECT_EQ(entry.metrics.count("trajectory_digest"), 0u);  // non-numeric
  EXPECT_EQ(entry.config.count("periods_per_second"), 0u);
}

TEST(BenchLedger, EncodeDecodeRoundTrips) {
  const BenchEntry entry = make_entry(city_doc(640.0, 0.002), "deadbeef", "ci ty\"x");
  const BenchEntry back = decode_entry(encode_entry(entry));
  EXPECT_EQ(back.sha, entry.sha);
  EXPECT_EQ(back.label, entry.label);
  EXPECT_EQ(back.fingerprint, entry.fingerprint);
  EXPECT_EQ(back.config, entry.config);
  EXPECT_EQ(back.metrics, entry.metrics);
  EXPECT_THROW(decode_entry("{\"sha\": \"x\"}"), std::runtime_error);  // no fingerprint
  EXPECT_THROW(decode_entry("{\"fingerprint\": \"f\", \"bogus\": 1}"),
               std::runtime_error);
}

TEST(BenchLedger, LoadHistoryHandlesMissingBlankAndMalformed) {
  const std::string path = ::testing::TempDir() + "ledger_history.jsonl";
  std::remove(path.c_str());
  EXPECT_TRUE(load_history(path).empty());  // missing file: nothing recorded yet

  {
    std::ofstream out(path);
    out << encode_entry(make_entry(city_doc(640.0, 0.002), "a", "city")) << "\n";
    out << "\n";  // blank lines are fine
    out << encode_entry(make_entry(city_doc(650.0, 0.002), "b", "city")) << "\n";
  }
  EXPECT_EQ(load_history(path).size(), 2u);

  {
    std::ofstream out(path, std::ios::app);
    out << "{broken\n";
  }
  EXPECT_THROW(load_history(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(BenchLedger, DiffDirectionsAndTolerance) {
  const BenchEntry base = make_entry(city_doc(640.0, 0.002), "a", "city");

  // Identical entries: no regression, every delta zero.
  const DiffResult same = diff_entries(base, base, 0.05);
  EXPECT_TRUE(same.fingerprint_match);
  EXPECT_FALSE(same.regression);
  for (const DiffRow& row : same.rows) EXPECT_EQ(row.delta_frac, 0.0);

  // 20% throughput drop: regression (higher-is-better, beyond 5%).
  const BenchEntry slower = make_entry(city_doc(640.0 * 0.8, 0.002), "b", "city");
  const DiffResult drop = diff_entries(base, slower, 0.05);
  EXPECT_TRUE(drop.regression);
  bool flagged = false;
  for (const DiffRow& row : drop.rows) {
    if (row.key == "periods_per_second") {
      EXPECT_TRUE(row.regression);
      EXPECT_EQ(row.direction, 1);
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
  // The same drop passes under a 25% tolerance.
  EXPECT_FALSE(diff_entries(base, slower, 0.25).regression);

  // 20% p99 increase: regression (lower-is-better).
  const BenchEntry laggier = make_entry(city_doc(640.0, 0.002 * 1.2), "c", "city");
  EXPECT_TRUE(diff_entries(base, laggier, 0.05).regression);

  // Improvement in a directed metric never gates.
  const BenchEntry faster = make_entry(city_doc(640.0 * 1.3, 0.002 * 0.5), "d", "city");
  EXPECT_FALSE(diff_entries(base, faster, 0.05).regression);
}

TEST(BenchLedger, UnknownMetricsAreReportedButNeverGate) {
  BenchEntry a;
  a.fingerprint = "0x0";
  a.metrics["total_performance"] = 100.0;  // direction unknown
  BenchEntry b = a;
  b.metrics["total_performance"] = 1.0;  // collapsed, but not a gate
  const DiffResult result = diff_entries(a, b, 0.05);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].direction, 0);
  EXPECT_FALSE(result.rows[0].regression);
  EXPECT_FALSE(result.regression);
}

#ifdef EDGESLICE_BENCH_LEDGER_PATH
/// Exit code of one bench_ledger CLI invocation.
int run_cli(const std::string& args) {
  const std::string command =
      std::string("\"") + EDGESLICE_BENCH_LEDGER_PATH + "\" " + args + " >/dev/null";
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(BenchLedgerCli, DiffExitCodesGateOnRegression) {
  const std::string dir = ::testing::TempDir();
  const std::string history = dir + "cli_history.jsonl";
  const std::string good = dir + "cli_bench_good.json";
  const std::string bad = dir + "cli_bench_bad.json";
  std::remove(history.c_str());
  {
    std::ofstream out(good);
    out << city_doc(640.0, 0.002);
  }
  {
    std::ofstream out(bad);  // the synthetic 20% periods/second regression
    out << city_doc(640.0 * 0.8, 0.002);
  }

  // check on a missing ledger: fine, nothing recorded yet.
  EXPECT_EQ(run_cli("check --history \"" + history + "\""), 0);

  EXPECT_EQ(run_cli("append \"" + good + "\" --history \"" + history +
                    "\" --sha aaa --label city"),
            0);
  EXPECT_EQ(run_cli("append \"" + good + "\" --history \"" + history +
                    "\" --sha bbb --label city"),
            0);
  // Identical entries: exit 0.
  EXPECT_EQ(run_cli("diff --history \"" + history + "\""), 0);

  EXPECT_EQ(run_cli("append \"" + bad + "\" --history \"" + history +
                    "\" --sha ccc --label city"),
            0);
  // Last two entries now differ by -20% periods/second: exit 1.
  EXPECT_EQ(run_cli("diff --history \"" + history + "\""), 1);
  // Explicit indices work the same.
  EXPECT_EQ(run_cli("diff --history \"" + history + "\" --a 0 --b 2"), 1);
  // A generous tolerance admits it.
  EXPECT_EQ(run_cli("diff --history \"" + history + "\" --tolerance 0.3"), 0);

  // The ledger validates; usage errors exit 2.
  EXPECT_EQ(run_cli("check --history \"" + history + "\""), 0);
  EXPECT_EQ(run_cli("frobnicate"), 2);
  EXPECT_EQ(run_cli("diff --history \"" + history + "\" --a"), 2);

  std::remove(history.c_str());
  std::remove(good.c_str());
  std::remove(bad.c_str());
}
#endif  // EDGESLICE_BENCH_LEDGER_PATH

}  // namespace
}  // namespace edgeslice::tools
