// Histogram merge property tests (ctest label: fleet).
//
// The fleet telemetry plane's correctness hinges on one algebraic fact:
// merging N workers' HistogramStates bucket-wise is indistinguishable
// from feeding one histogram the union of all their samples. Bucket
// counts and the min/max envelope must match EXACTLY (quantile estimates
// are a pure function of those, so they match bit-for-bit too); the
// moment accumulators combine via Chan's parallel algorithm, which is
// exact in real arithmetic but reassociates floating-point sums, so
// mean/m2/total are compared to a tight relative tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <random>
#include <vector>

#include "common/metrics.h"

namespace edgeslice {
namespace {

/// Feed `samples` into a fresh histogram and return its state.
HistogramState fed_state(const std::vector<double>& samples) {
  Histogram h;
  for (double x : samples) h.observe(x);
  return h.state();
}

void expect_equivalent(const HistogramState& merged, const HistogramState& whole) {
  EXPECT_EQ(merged.count, whole.count);
  EXPECT_EQ(merged.zero_count, whole.zero_count);
  EXPECT_EQ(merged.positive, whole.positive);
  EXPECT_EQ(merged.negative, whole.negative);
  if (whole.count > 0) {
    EXPECT_EQ(merged.min, whole.min);
    EXPECT_EQ(merged.max, whole.max);
  }
  const double scale = std::max(1.0, std::abs(whole.total));
  EXPECT_NEAR(merged.total, whole.total, 1e-9 * scale);
  EXPECT_NEAR(merged.mean, whole.mean, 1e-9 * std::max(1.0, std::abs(whole.mean)));
  EXPECT_NEAR(merged.m2, whole.m2, 1e-6 * std::max(1.0, std::abs(whole.m2)));

  // Quantiles are computed from bucket counts clamped to [min, max] —
  // all exactly equal above — so the estimates must match bit-for-bit.
  Histogram from_merged;
  Histogram from_whole;
  {
    const bool was_enabled = metrics_enabled();
    set_metrics_enabled(true);
    from_merged.load_state(merged);
    from_whole.load_state(whole);
    set_metrics_enabled(was_enabled);
  }
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(from_merged.quantile(q), from_whole.quantile(q)) << "q=" << q;
  }
}

/// Split `samples` across `workers` round-robin, merge the partial
/// states, and compare against the union-fed state.
void check_split(const std::vector<double>& samples, std::size_t workers) {
  std::vector<std::vector<double>> shards(workers);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    shards[i % workers].push_back(samples[i]);
  }
  HistogramState merged;
  for (const auto& shard : shards) {
    merge_histogram_state(merged, fed_state(shard));
  }
  expect_equivalent(merged, fed_state(samples));
}

class HistogramMergeTest : public ::testing::Test {
 protected:
  void SetUp() override { set_metrics_enabled(true); }
};

TEST_F(HistogramMergeTest, RandomSamplesAcrossWorkerCounts) {
  std::mt19937 gen(12345);
  std::lognormal_distribution<double> latency(-6.0, 2.0);  // micro- to deci-seconds
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(latency(gen));
  for (std::size_t workers : {1u, 2u, 3u, 4u, 7u}) {
    SCOPED_TRACE(workers);
    check_split(samples, workers);
  }
}

TEST_F(HistogramMergeTest, MixedSignsZerosAndExtremes) {
  std::mt19937 gen(99);
  std::uniform_real_distribution<double> sign(-1.0, 1.0);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) {
    const double u = sign(gen);
    if (i % 11 == 0) {
      samples.push_back(0.0);  // the dedicated zero bucket
    } else if (i % 13 == 0) {
      samples.push_back(u * 1e-12);  // below kMinAbs: underflow bucket edge
    } else if (i % 17 == 0) {
      samples.push_back(u * 1e9);  // far positive/negative range
    } else {
      samples.push_back(u);
    }
  }
  for (std::size_t workers : {2u, 5u}) {
    SCOPED_TRACE(workers);
    check_split(samples, workers);
  }
}

TEST_F(HistogramMergeTest, EmptyWorkersAreIdentityElements) {
  const std::vector<double> samples{0.5, 1.5, 2.5, 0.0, -3.0};
  const HistogramState whole = fed_state(samples);

  // empty (+) whole == whole.
  HistogramState left;
  merge_histogram_state(left, whole);
  expect_equivalent(left, whole);

  // whole (+) empty == whole.
  HistogramState right = whole;
  merge_histogram_state(right, HistogramState{});
  expect_equivalent(right, whole);

  // A fleet where most workers recorded nothing: still the union.
  HistogramState merged;
  merge_histogram_state(merged, HistogramState{});
  merge_histogram_state(merged, whole);
  merge_histogram_state(merged, HistogramState{});
  merge_histogram_state(merged, HistogramState{});
  expect_equivalent(merged, whole);
}

TEST_F(HistogramMergeTest, SingleSampleWorkers) {
  // One observation per worker: the degenerate shard shape a nearly-idle
  // fleet produces. min/max envelope and m2 composition must still hold.
  const std::vector<double> samples{3.25, -0.125, 0.0, 7e-4, 42.0, 42.0};
  HistogramState merged;
  for (double x : samples) merge_histogram_state(merged, fed_state({x}));
  expect_equivalent(merged, fed_state(samples));
}

TEST_F(HistogramMergeTest, MergeIsAssociativeOnBucketsAndEnvelope) {
  std::mt19937 gen(7);
  std::normal_distribution<double> dist(0.0, 10.0);
  std::vector<std::vector<double>> shards(3);
  for (int i = 0; i < 300; ++i) shards[static_cast<std::size_t>(i % 3)].push_back(dist(gen));

  // (a + b) + c vs a + (b + c): exact fields must agree.
  HistogramState left = fed_state(shards[0]);
  merge_histogram_state(left, fed_state(shards[1]));
  merge_histogram_state(left, fed_state(shards[2]));

  HistogramState bc = fed_state(shards[1]);
  merge_histogram_state(bc, fed_state(shards[2]));
  HistogramState right = fed_state(shards[0]);
  merge_histogram_state(right, bc);

  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.zero_count, right.zero_count);
  EXPECT_EQ(left.positive, right.positive);
  EXPECT_EQ(left.negative, right.negative);
  EXPECT_EQ(left.min, right.min);
  EXPECT_EQ(left.max, right.max);
}

}  // namespace
}  // namespace edgeslice
