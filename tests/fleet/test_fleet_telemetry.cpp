// Fleet telemetry end-to-end (ctest label: fleet).
//
// The acceptance contract of the telemetry plane, driven through real
// forked workers: after a 4-worker run under worker-kill chaos the
// supervisor's registry holds per-worker-labeled series for the
// worker-side counters, the event log holds origin-tagged events from
// every slot (the killed slot contributes its pre-kill flush AND a
// TelemetryGap marker), and — the hard constraint — trajectories are
// bit-identical to the in-process run whether telemetry ships every
// period or never, because nothing on the deterministic path reads or
// waits on telemetry.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace_span.h"
#include "core/policies.h"
#include "core/system.h"
#include "env/service_model.h"
#include "ipc/supervisor.h"
#include "obs/aggregator.h"
#include "obs/event_log.h"

namespace edgeslice::ipc {
namespace {

constexpr std::size_t kRas = 4;
constexpr std::size_t kPeriods = 4;

class FleetTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    global_metrics().clear();
    global_tracer().clear();
    obs::global_event_log().clear();
    obs::set_fleet_status({});
  }
  void TearDown() override {
    global_metrics().clear();
    global_tracer().clear();
    obs::global_event_log().clear();
    obs::set_fleet_status({});
  }
};

std::unique_ptr<env::RaEnvironment> make_env(Rng rng) {
  env::RaEnvironmentConfig config;  // 2 slices, T = 10
  return std::make_unique<env::RaEnvironment>(
      config,
      std::vector<env::AppProfile>{env::slice1_profile(), env::slice2_profile()},
      std::make_shared<env::DirectServiceModel>(env::prototype_capacity()),
      env::make_queue_power_perf(), rng);
}

struct SystemRun {
  std::vector<core::PeriodResult> periods;
  std::vector<double> series;
  std::vector<core::IntervalRecord> records;
  std::size_t restarts_slot0 = 0;
};

/// One evaluation run at `workers` worker processes (0 = in-process
/// reference) with the given telemetry cadence. The supervisor is
/// stopped explicitly so clean-shutdown final flushes land before the
/// caller inspects the global registry/event log.
SystemRun run_system(std::uint64_t seed, std::size_t workers,
                     std::uint64_t telemetry_every, const FaultInjector* faults) {
  const Rng parent(seed);
  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  std::vector<std::unique_ptr<core::RaPolicy>> policies;
  std::vector<env::RaEnvironment*> env_ptrs;
  std::vector<core::RaPolicy*> policy_ptrs;
  for (std::size_t j = 0; j < kRas; ++j) {
    environments.push_back(make_env(parent.spawn(700 + j)));
    policies.push_back(std::make_unique<core::TaroPolicy>());
    env_ptrs.push_back(environments.back().get());
    policy_ptrs.push_back(policies.back().get());
  }
  core::CoordinatorConfig coordinator;
  coordinator.slices = 2;
  coordinator.ras = kRas;
  core::SystemConfig config;
  config.faults = faults;

  std::unique_ptr<WorkerSupervisor> supervisor;
  if (workers > 0) {
    SupervisorConfig sup_config;
    sup_config.workers = workers;
    sup_config.telemetry_every = telemetry_every;
    supervisor = std::make_unique<WorkerSupervisor>(env_ptrs, policy_ptrs, sup_config);
    supervisor->start();
    config.transport = supervisor.get();
  }
  core::EdgeSliceSystem system(env_ptrs, policy_ptrs, coordinator, config);

  SystemRun out;
  out.periods = system.run(kPeriods);
  out.series = system.monitor().system_performance_series();
  out.records = system.monitor().records();
  if (supervisor) {
    out.restarts_slot0 = supervisor->restart_count(0);
    supervisor->stop();
  }
  return out;
}

void expect_identical(const SystemRun& a, const SystemRun& b, const std::string& label) {
  ASSERT_EQ(a.periods.size(), b.periods.size()) << label;
  for (std::size_t p = 0; p < a.periods.size(); ++p) {
    EXPECT_EQ(a.periods[p].slice_performance, b.periods[p].slice_performance)
        << label << " period " << p;
    EXPECT_EQ(a.periods[p].system_performance, b.periods[p].system_performance);
    EXPECT_EQ(a.periods[p].crashed_ras, b.periods[p].crashed_ras);
  }
  EXPECT_EQ(a.series, b.series) << label;
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (std::size_t r = 0; r < a.records.size(); ++r) {
    EXPECT_EQ(a.records[r].performance, b.records[r].performance)
        << label << " record " << r;
    EXPECT_EQ(a.records[r].action, b.records[r].action);
    EXPECT_EQ(a.records[r].reward, b.records[r].reward);
  }
}

std::uint64_t labeled_counter(const std::string& name, std::size_t slot) {
  return global_metrics().counter(name, {{"worker", std::to_string(slot)}}).value();
}

TEST_F(FleetTelemetryTest, TrajectoriesIdenticalWithAggregationOnAndOff) {
  // The determinism boundary: 0/1/2/4 workers, telemetry shipping every
  // period vs never, all bit-identical. Telemetry merges on the
  // supervisor's pump thread and never feeds back into orchestration.
  const SystemRun reference = run_system(21, 0, 0, nullptr);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    for (const std::uint64_t every : {std::uint64_t{0}, std::uint64_t{1}}) {
      expect_identical(reference, run_system(21, workers, every, nullptr),
                       "workers " + std::to_string(workers) + " telemetry_every " +
                           std::to_string(every));
    }
  }
}

TEST_F(FleetTelemetryTest, ChaosRunPublishesEverySlotIncludingTheKilledOne) {
  // SIGKILL RA 0's worker (slot 0 of 4) at period 1 for 2 periods. The
  // slot's period-0 flush already reached the supervisor; the unclean
  // death must add a TelemetryGap, and the respawned incarnation's
  // counts must stack on the dead one's base.
  FaultPlan plan;
  plan.seed = 7;
  plan.events.push_back(FaultEvent{FaultType::WorkerKill, 1, 0, 2, 1.0});
  const FaultInjector faults(plan);
  const SystemRun run = run_system(5, kRas, /*telemetry_every=*/1, &faults);
  ASSERT_GE(run.restarts_slot0, 1u) << "kill never fired; test is vacuous";

  // Per-worker-labeled series for the worker-side counters, every slot.
  for (std::size_t slot = 0; slot < kRas; ++slot) {
    EXPECT_GE(labeled_counter("worker.periods", slot), 1u) << "slot " << slot;
    EXPECT_GE(labeled_counter("worker.intervals", slot), 10u) << "slot " << slot;
    EXPECT_GE(global_metrics()
                  .histogram("worker.ra_period_seconds",
                             {{"worker", std::to_string(slot)}})
                  .count(),
              1u)
        << "slot " << slot;
  }
  // Live slots ran every period; the killed slot's labeled total is the
  // dead incarnation's base plus the respawn's from-zero count — never
  // more than the period count (base folding must not double-publish).
  for (std::size_t slot = 1; slot < kRas; ++slot) {
    EXPECT_EQ(labeled_counter("worker.periods", slot), kPeriods) << "slot " << slot;
  }
  EXPECT_LE(labeled_counter("worker.periods", 0), kPeriods);

  // Origin-tagged events from every slot (each incarnation records its
  // own WorkerSpawn), and the gap marker for the killed slot.
  std::vector<std::size_t> spawns(kRas, 0);
  std::size_t gaps_slot0 = 0;
  for (const obs::Event& e : obs::global_event_log().snapshot()) {
    if (e.worker == obs::Event::kNone) continue;
    ASSERT_LT(e.worker, kRas);
    if (e.kind == obs::EventKind::WorkerSpawn) ++spawns[e.worker];
    if (e.kind == obs::EventKind::TelemetryGap && e.worker == 0) ++gaps_slot0;
  }
  for (std::size_t slot = 0; slot < kRas; ++slot) {
    EXPECT_GE(spawns[slot], 1u) << "slot " << slot;
  }
  EXPECT_GE(spawns[0], 2u) << "respawned incarnation's spawn event missing";
  EXPECT_GE(gaps_slot0, 1u);

  // Fleet-wide span aggregates reached the supervisor's tracer.
  bool ra_period_span_seen = false;
  for (const SpanPeriodStats& s : global_tracer().export_period_stats()) {
    if (s.path == "worker.ra_period" && s.stats.count > 0) ra_period_span_seen = true;
  }
  EXPECT_TRUE(ra_period_span_seen);

  // /fleet.json reflects the restart count the chaos caused.
  const std::string fleet = obs::fleet_status_json();
  EXPECT_NE(fleet.find("\"total\": 4"), std::string::npos) << fleet;
  EXPECT_NE(fleet.find("\"restarts\": " + std::to_string(run.restarts_slot0)),
            std::string::npos)
      << fleet;
}

TEST_F(FleetTelemetryTest, CleanShutdownFinalFlushDeliversACoarseCadence) {
  // A cadence longer than the run: nothing ships period-by-period, so
  // everything rides the Shutdown final flush — which stop() must wait
  // for before tearing the workers down, without counting the clean
  // exits as deaths or leaving gap markers.
  const SystemRun run = run_system(23, 2, /*telemetry_every=*/1000, nullptr);
  EXPECT_EQ(run.restarts_slot0, 0u);
  EXPECT_EQ(labeled_counter("worker.periods", 0), kPeriods);
  EXPECT_EQ(labeled_counter("worker.periods", 1), kPeriods);
  EXPECT_EQ(global_metrics().counter("ipc.worker_deaths").value(), 0u);
  for (const obs::Event& e : obs::global_event_log().snapshot()) {
    EXPECT_NE(e.kind, obs::EventKind::TelemetryGap);
    EXPECT_NE(e.kind, obs::EventKind::WorkerExit);
  }
}

TEST_F(FleetTelemetryTest, CadenceZeroShipsNothing) {
  run_system(29, 2, /*telemetry_every=*/0, nullptr);
  for (const std::string& name : global_metrics().counter_names()) {
    EXPECT_EQ(name.find("worker=\""), std::string::npos) << name;
  }
  for (const obs::Event& e : obs::global_event_log().snapshot()) {
    EXPECT_EQ(e.worker, obs::Event::kNone);
  }
}

}  // namespace
}  // namespace edgeslice::ipc
