# Empty compiler generated dependencies file for es_nn.
# This may be replaced when dependencies are built.
