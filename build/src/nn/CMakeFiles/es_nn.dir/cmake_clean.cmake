file(REMOVE_RECURSE
  "CMakeFiles/es_nn.dir/activations.cpp.o"
  "CMakeFiles/es_nn.dir/activations.cpp.o.d"
  "CMakeFiles/es_nn.dir/adam.cpp.o"
  "CMakeFiles/es_nn.dir/adam.cpp.o.d"
  "CMakeFiles/es_nn.dir/dense.cpp.o"
  "CMakeFiles/es_nn.dir/dense.cpp.o.d"
  "CMakeFiles/es_nn.dir/matrix.cpp.o"
  "CMakeFiles/es_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/es_nn.dir/mlp.cpp.o"
  "CMakeFiles/es_nn.dir/mlp.cpp.o.d"
  "libes_nn.a"
  "libes_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
