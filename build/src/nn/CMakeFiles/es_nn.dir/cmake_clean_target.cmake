file(REMOVE_RECURSE
  "libes_nn.a"
)
