file(REMOVE_RECURSE
  "libes_common.a"
)
