# Empty dependencies file for es_common.
# This may be replaced when dependencies are built.
