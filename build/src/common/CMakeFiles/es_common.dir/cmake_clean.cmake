file(REMOVE_RECURSE
  "CMakeFiles/es_common.dir/cli.cpp.o"
  "CMakeFiles/es_common.dir/cli.cpp.o.d"
  "CMakeFiles/es_common.dir/logging.cpp.o"
  "CMakeFiles/es_common.dir/logging.cpp.o.d"
  "CMakeFiles/es_common.dir/rng.cpp.o"
  "CMakeFiles/es_common.dir/rng.cpp.o.d"
  "CMakeFiles/es_common.dir/stats.cpp.o"
  "CMakeFiles/es_common.dir/stats.cpp.o.d"
  "libes_common.a"
  "libes_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
