# Empty dependencies file for es_trace.
# This may be replaced when dependencies are built.
