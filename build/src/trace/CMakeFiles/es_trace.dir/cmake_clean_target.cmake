file(REMOVE_RECURSE
  "libes_trace.a"
)
