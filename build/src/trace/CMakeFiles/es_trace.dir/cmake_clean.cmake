file(REMOVE_RECURSE
  "CMakeFiles/es_trace.dir/arrivals.cpp.o"
  "CMakeFiles/es_trace.dir/arrivals.cpp.o.d"
  "CMakeFiles/es_trace.dir/csv.cpp.o"
  "CMakeFiles/es_trace.dir/csv.cpp.o.d"
  "CMakeFiles/es_trace.dir/diurnal.cpp.o"
  "CMakeFiles/es_trace.dir/diurnal.cpp.o.d"
  "CMakeFiles/es_trace.dir/trace.cpp.o"
  "CMakeFiles/es_trace.dir/trace.cpp.o.d"
  "libes_trace.a"
  "libes_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
