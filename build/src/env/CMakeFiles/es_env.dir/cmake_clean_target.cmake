file(REMOVE_RECURSE
  "libes_env.a"
)
