# Empty compiler generated dependencies file for es_env.
# This may be replaced when dependencies are built.
