file(REMOVE_RECURSE
  "CMakeFiles/es_env.dir/app_model.cpp.o"
  "CMakeFiles/es_env.dir/app_model.cpp.o.d"
  "CMakeFiles/es_env.dir/environment.cpp.o"
  "CMakeFiles/es_env.dir/environment.cpp.o.d"
  "CMakeFiles/es_env.dir/perf.cpp.o"
  "CMakeFiles/es_env.dir/perf.cpp.o.d"
  "CMakeFiles/es_env.dir/queue.cpp.o"
  "CMakeFiles/es_env.dir/queue.cpp.o.d"
  "CMakeFiles/es_env.dir/service_model.cpp.o"
  "CMakeFiles/es_env.dir/service_model.cpp.o.d"
  "libes_env.a"
  "libes_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
