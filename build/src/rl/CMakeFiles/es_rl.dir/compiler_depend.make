# Empty compiler generated dependencies file for es_rl.
# This may be replaced when dependencies are built.
