file(REMOVE_RECURSE
  "libes_rl.a"
)
