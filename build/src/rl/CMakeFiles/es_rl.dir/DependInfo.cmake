
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/agent.cpp" "src/rl/CMakeFiles/es_rl.dir/agent.cpp.o" "gcc" "src/rl/CMakeFiles/es_rl.dir/agent.cpp.o.d"
  "/root/repo/src/rl/ddpg.cpp" "src/rl/CMakeFiles/es_rl.dir/ddpg.cpp.o" "gcc" "src/rl/CMakeFiles/es_rl.dir/ddpg.cpp.o.d"
  "/root/repo/src/rl/frozen.cpp" "src/rl/CMakeFiles/es_rl.dir/frozen.cpp.o" "gcc" "src/rl/CMakeFiles/es_rl.dir/frozen.cpp.o.d"
  "/root/repo/src/rl/gaussian_policy.cpp" "src/rl/CMakeFiles/es_rl.dir/gaussian_policy.cpp.o" "gcc" "src/rl/CMakeFiles/es_rl.dir/gaussian_policy.cpp.o.d"
  "/root/repo/src/rl/noise.cpp" "src/rl/CMakeFiles/es_rl.dir/noise.cpp.o" "gcc" "src/rl/CMakeFiles/es_rl.dir/noise.cpp.o.d"
  "/root/repo/src/rl/ppo.cpp" "src/rl/CMakeFiles/es_rl.dir/ppo.cpp.o" "gcc" "src/rl/CMakeFiles/es_rl.dir/ppo.cpp.o.d"
  "/root/repo/src/rl/replay_buffer.cpp" "src/rl/CMakeFiles/es_rl.dir/replay_buffer.cpp.o" "gcc" "src/rl/CMakeFiles/es_rl.dir/replay_buffer.cpp.o.d"
  "/root/repo/src/rl/rollout.cpp" "src/rl/CMakeFiles/es_rl.dir/rollout.cpp.o" "gcc" "src/rl/CMakeFiles/es_rl.dir/rollout.cpp.o.d"
  "/root/repo/src/rl/sac.cpp" "src/rl/CMakeFiles/es_rl.dir/sac.cpp.o" "gcc" "src/rl/CMakeFiles/es_rl.dir/sac.cpp.o.d"
  "/root/repo/src/rl/trpo.cpp" "src/rl/CMakeFiles/es_rl.dir/trpo.cpp.o" "gcc" "src/rl/CMakeFiles/es_rl.dir/trpo.cpp.o.d"
  "/root/repo/src/rl/vpg.cpp" "src/rl/CMakeFiles/es_rl.dir/vpg.cpp.o" "gcc" "src/rl/CMakeFiles/es_rl.dir/vpg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/es_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/es_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
