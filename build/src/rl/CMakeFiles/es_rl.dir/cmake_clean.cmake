file(REMOVE_RECURSE
  "CMakeFiles/es_rl.dir/agent.cpp.o"
  "CMakeFiles/es_rl.dir/agent.cpp.o.d"
  "CMakeFiles/es_rl.dir/ddpg.cpp.o"
  "CMakeFiles/es_rl.dir/ddpg.cpp.o.d"
  "CMakeFiles/es_rl.dir/frozen.cpp.o"
  "CMakeFiles/es_rl.dir/frozen.cpp.o.d"
  "CMakeFiles/es_rl.dir/gaussian_policy.cpp.o"
  "CMakeFiles/es_rl.dir/gaussian_policy.cpp.o.d"
  "CMakeFiles/es_rl.dir/noise.cpp.o"
  "CMakeFiles/es_rl.dir/noise.cpp.o.d"
  "CMakeFiles/es_rl.dir/ppo.cpp.o"
  "CMakeFiles/es_rl.dir/ppo.cpp.o.d"
  "CMakeFiles/es_rl.dir/replay_buffer.cpp.o"
  "CMakeFiles/es_rl.dir/replay_buffer.cpp.o.d"
  "CMakeFiles/es_rl.dir/rollout.cpp.o"
  "CMakeFiles/es_rl.dir/rollout.cpp.o.d"
  "CMakeFiles/es_rl.dir/sac.cpp.o"
  "CMakeFiles/es_rl.dir/sac.cpp.o.d"
  "CMakeFiles/es_rl.dir/trpo.cpp.o"
  "CMakeFiles/es_rl.dir/trpo.cpp.o.d"
  "CMakeFiles/es_rl.dir/vpg.cpp.o"
  "CMakeFiles/es_rl.dir/vpg.cpp.o.d"
  "libes_rl.a"
  "libes_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
