# Empty compiler generated dependencies file for es_compute.
# This may be replaced when dependencies are built.
