file(REMOVE_RECURSE
  "libes_compute.a"
)
