file(REMOVE_RECURSE
  "CMakeFiles/es_compute.dir/computing_manager.cpp.o"
  "CMakeFiles/es_compute.dir/computing_manager.cpp.o.d"
  "CMakeFiles/es_compute.dir/gpu.cpp.o"
  "CMakeFiles/es_compute.dir/gpu.cpp.o.d"
  "CMakeFiles/es_compute.dir/kernel_split.cpp.o"
  "CMakeFiles/es_compute.dir/kernel_split.cpp.o.d"
  "libes_compute.a"
  "libes_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
