
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compute/computing_manager.cpp" "src/compute/CMakeFiles/es_compute.dir/computing_manager.cpp.o" "gcc" "src/compute/CMakeFiles/es_compute.dir/computing_manager.cpp.o.d"
  "/root/repo/src/compute/gpu.cpp" "src/compute/CMakeFiles/es_compute.dir/gpu.cpp.o" "gcc" "src/compute/CMakeFiles/es_compute.dir/gpu.cpp.o.d"
  "/root/repo/src/compute/kernel_split.cpp" "src/compute/CMakeFiles/es_compute.dir/kernel_split.cpp.o" "gcc" "src/compute/CMakeFiles/es_compute.dir/kernel_split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/es_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
