file(REMOVE_RECURSE
  "libes_transport.a"
)
