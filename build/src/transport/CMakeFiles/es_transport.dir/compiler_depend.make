# Empty compiler generated dependencies file for es_transport.
# This may be replaced when dependencies are built.
