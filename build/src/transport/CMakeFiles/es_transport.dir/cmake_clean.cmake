file(REMOVE_RECURSE
  "CMakeFiles/es_transport.dir/controller.cpp.o"
  "CMakeFiles/es_transport.dir/controller.cpp.o.d"
  "CMakeFiles/es_transport.dir/switch.cpp.o"
  "CMakeFiles/es_transport.dir/switch.cpp.o.d"
  "CMakeFiles/es_transport.dir/transport_manager.cpp.o"
  "CMakeFiles/es_transport.dir/transport_manager.cpp.o.d"
  "libes_transport.a"
  "libes_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
