# Empty dependencies file for es_core.
# This may be replaced when dependencies are built.
