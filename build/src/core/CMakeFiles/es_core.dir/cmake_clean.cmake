file(REMOVE_RECURSE
  "CMakeFiles/es_core.dir/coordinator.cpp.o"
  "CMakeFiles/es_core.dir/coordinator.cpp.o.d"
  "CMakeFiles/es_core.dir/monitor.cpp.o"
  "CMakeFiles/es_core.dir/monitor.cpp.o.d"
  "CMakeFiles/es_core.dir/policies.cpp.o"
  "CMakeFiles/es_core.dir/policies.cpp.o.d"
  "CMakeFiles/es_core.dir/resource_autonomy.cpp.o"
  "CMakeFiles/es_core.dir/resource_autonomy.cpp.o.d"
  "CMakeFiles/es_core.dir/slice_manager.cpp.o"
  "CMakeFiles/es_core.dir/slice_manager.cpp.o.d"
  "CMakeFiles/es_core.dir/system.cpp.o"
  "CMakeFiles/es_core.dir/system.cpp.o.d"
  "CMakeFiles/es_core.dir/training.cpp.o"
  "CMakeFiles/es_core.dir/training.cpp.o.d"
  "libes_core.a"
  "libes_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
