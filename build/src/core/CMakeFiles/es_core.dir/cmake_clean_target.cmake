file(REMOVE_RECURSE
  "libes_core.a"
)
