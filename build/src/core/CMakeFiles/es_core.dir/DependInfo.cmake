
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coordinator.cpp" "src/core/CMakeFiles/es_core.dir/coordinator.cpp.o" "gcc" "src/core/CMakeFiles/es_core.dir/coordinator.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/es_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/es_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/policies.cpp" "src/core/CMakeFiles/es_core.dir/policies.cpp.o" "gcc" "src/core/CMakeFiles/es_core.dir/policies.cpp.o.d"
  "/root/repo/src/core/resource_autonomy.cpp" "src/core/CMakeFiles/es_core.dir/resource_autonomy.cpp.o" "gcc" "src/core/CMakeFiles/es_core.dir/resource_autonomy.cpp.o.d"
  "/root/repo/src/core/slice_manager.cpp" "src/core/CMakeFiles/es_core.dir/slice_manager.cpp.o" "gcc" "src/core/CMakeFiles/es_core.dir/slice_manager.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/es_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/es_core.dir/system.cpp.o.d"
  "/root/repo/src/core/training.cpp" "src/core/CMakeFiles/es_core.dir/training.cpp.o" "gcc" "src/core/CMakeFiles/es_core.dir/training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/es_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/es_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/es_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/es_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/es_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/es_env.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/es_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/es_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/es_compute.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
