# Empty dependencies file for es_radio.
# This may be replaced when dependencies are built.
