file(REMOVE_RECURSE
  "CMakeFiles/es_radio.dir/channel.cpp.o"
  "CMakeFiles/es_radio.dir/channel.cpp.o.d"
  "CMakeFiles/es_radio.dir/lte.cpp.o"
  "CMakeFiles/es_radio.dir/lte.cpp.o.d"
  "CMakeFiles/es_radio.dir/radio_manager.cpp.o"
  "CMakeFiles/es_radio.dir/radio_manager.cpp.o.d"
  "CMakeFiles/es_radio.dir/scheduler.cpp.o"
  "CMakeFiles/es_radio.dir/scheduler.cpp.o.d"
  "libes_radio.a"
  "libes_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
