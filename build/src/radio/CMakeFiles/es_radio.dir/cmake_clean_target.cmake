file(REMOVE_RECURSE
  "libes_radio.a"
)
