
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/channel.cpp" "src/radio/CMakeFiles/es_radio.dir/channel.cpp.o" "gcc" "src/radio/CMakeFiles/es_radio.dir/channel.cpp.o.d"
  "/root/repo/src/radio/lte.cpp" "src/radio/CMakeFiles/es_radio.dir/lte.cpp.o" "gcc" "src/radio/CMakeFiles/es_radio.dir/lte.cpp.o.d"
  "/root/repo/src/radio/radio_manager.cpp" "src/radio/CMakeFiles/es_radio.dir/radio_manager.cpp.o" "gcc" "src/radio/CMakeFiles/es_radio.dir/radio_manager.cpp.o.d"
  "/root/repo/src/radio/scheduler.cpp" "src/radio/CMakeFiles/es_radio.dir/scheduler.cpp.o" "gcc" "src/radio/CMakeFiles/es_radio.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/es_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
