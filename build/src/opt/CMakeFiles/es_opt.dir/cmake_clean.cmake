file(REMOVE_RECURSE
  "CMakeFiles/es_opt.dir/admm.cpp.o"
  "CMakeFiles/es_opt.dir/admm.cpp.o.d"
  "CMakeFiles/es_opt.dir/linreg.cpp.o"
  "CMakeFiles/es_opt.dir/linreg.cpp.o.d"
  "CMakeFiles/es_opt.dir/projection.cpp.o"
  "CMakeFiles/es_opt.dir/projection.cpp.o.d"
  "CMakeFiles/es_opt.dir/qp.cpp.o"
  "CMakeFiles/es_opt.dir/qp.cpp.o.d"
  "libes_opt.a"
  "libes_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
