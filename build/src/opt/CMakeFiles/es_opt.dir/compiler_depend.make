# Empty compiler generated dependencies file for es_opt.
# This may be replaced when dependencies are built.
