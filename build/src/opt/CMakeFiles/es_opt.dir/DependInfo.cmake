
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/admm.cpp" "src/opt/CMakeFiles/es_opt.dir/admm.cpp.o" "gcc" "src/opt/CMakeFiles/es_opt.dir/admm.cpp.o.d"
  "/root/repo/src/opt/linreg.cpp" "src/opt/CMakeFiles/es_opt.dir/linreg.cpp.o" "gcc" "src/opt/CMakeFiles/es_opt.dir/linreg.cpp.o.d"
  "/root/repo/src/opt/projection.cpp" "src/opt/CMakeFiles/es_opt.dir/projection.cpp.o" "gcc" "src/opt/CMakeFiles/es_opt.dir/projection.cpp.o.d"
  "/root/repo/src/opt/qp.cpp" "src/opt/CMakeFiles/es_opt.dir/qp.cpp.o" "gcc" "src/opt/CMakeFiles/es_opt.dir/qp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/es_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/es_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
