file(REMOVE_RECURSE
  "libes_opt.a"
)
