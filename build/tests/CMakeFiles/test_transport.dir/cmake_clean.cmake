file(REMOVE_RECURSE
  "CMakeFiles/test_transport.dir/transport/test_controller.cpp.o"
  "CMakeFiles/test_transport.dir/transport/test_controller.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/test_switch.cpp.o"
  "CMakeFiles/test_transport.dir/transport/test_switch.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/test_transport_manager.cpp.o"
  "CMakeFiles/test_transport.dir/transport/test_transport_manager.cpp.o.d"
  "test_transport"
  "test_transport.pdb"
  "test_transport[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
