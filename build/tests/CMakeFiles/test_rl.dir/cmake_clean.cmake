file(REMOVE_RECURSE
  "CMakeFiles/test_rl.dir/rl/test_agents.cpp.o"
  "CMakeFiles/test_rl.dir/rl/test_agents.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/test_frozen.cpp.o"
  "CMakeFiles/test_rl.dir/rl/test_frozen.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/test_gaussian_policy.cpp.o"
  "CMakeFiles/test_rl.dir/rl/test_gaussian_policy.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/test_noise.cpp.o"
  "CMakeFiles/test_rl.dir/rl/test_noise.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/test_replay.cpp.o"
  "CMakeFiles/test_rl.dir/rl/test_replay.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/test_rollout.cpp.o"
  "CMakeFiles/test_rl.dir/rl/test_rollout.cpp.o.d"
  "test_rl"
  "test_rl.pdb"
  "test_rl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
