file(REMOVE_RECURSE
  "CMakeFiles/test_env.dir/env/test_app_model.cpp.o"
  "CMakeFiles/test_env.dir/env/test_app_model.cpp.o.d"
  "CMakeFiles/test_env.dir/env/test_environment.cpp.o"
  "CMakeFiles/test_env.dir/env/test_environment.cpp.o.d"
  "CMakeFiles/test_env.dir/env/test_perf.cpp.o"
  "CMakeFiles/test_env.dir/env/test_perf.cpp.o.d"
  "CMakeFiles/test_env.dir/env/test_queue.cpp.o"
  "CMakeFiles/test_env.dir/env/test_queue.cpp.o.d"
  "CMakeFiles/test_env.dir/env/test_service_model.cpp.o"
  "CMakeFiles/test_env.dir/env/test_service_model.cpp.o.d"
  "test_env"
  "test_env.pdb"
  "test_env[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
