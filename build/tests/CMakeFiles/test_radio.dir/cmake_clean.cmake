file(REMOVE_RECURSE
  "CMakeFiles/test_radio.dir/radio/test_channel.cpp.o"
  "CMakeFiles/test_radio.dir/radio/test_channel.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/test_lte.cpp.o"
  "CMakeFiles/test_radio.dir/radio/test_lte.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/test_radio_manager.cpp.o"
  "CMakeFiles/test_radio.dir/radio/test_radio_manager.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/test_scheduler.cpp.o"
  "CMakeFiles/test_radio.dir/radio/test_scheduler.cpp.o.d"
  "test_radio"
  "test_radio.pdb"
  "test_radio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
