file(REMOVE_RECURSE
  "CMakeFiles/test_compute.dir/compute/test_computing_manager.cpp.o"
  "CMakeFiles/test_compute.dir/compute/test_computing_manager.cpp.o.d"
  "CMakeFiles/test_compute.dir/compute/test_gpu.cpp.o"
  "CMakeFiles/test_compute.dir/compute/test_gpu.cpp.o.d"
  "CMakeFiles/test_compute.dir/compute/test_kernel_split.cpp.o"
  "CMakeFiles/test_compute.dir/compute/test_kernel_split.cpp.o.d"
  "test_compute"
  "test_compute.pdb"
  "test_compute[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
