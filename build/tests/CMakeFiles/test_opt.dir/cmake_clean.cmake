file(REMOVE_RECURSE
  "CMakeFiles/test_opt.dir/opt/test_admm.cpp.o"
  "CMakeFiles/test_opt.dir/opt/test_admm.cpp.o.d"
  "CMakeFiles/test_opt.dir/opt/test_linreg.cpp.o"
  "CMakeFiles/test_opt.dir/opt/test_linreg.cpp.o.d"
  "CMakeFiles/test_opt.dir/opt/test_projection.cpp.o"
  "CMakeFiles/test_opt.dir/opt/test_projection.cpp.o.d"
  "CMakeFiles/test_opt.dir/opt/test_qp.cpp.o"
  "CMakeFiles/test_opt.dir/opt/test_qp.cpp.o.d"
  "test_opt"
  "test_opt.pdb"
  "test_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
