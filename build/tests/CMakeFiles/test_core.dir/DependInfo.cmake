
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_consensus.cpp" "tests/CMakeFiles/test_core.dir/core/test_consensus.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_consensus.cpp.o.d"
  "/root/repo/tests/core/test_coordinator.cpp" "tests/CMakeFiles/test_core.dir/core/test_coordinator.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_coordinator.cpp.o.d"
  "/root/repo/tests/core/test_monitor.cpp" "tests/CMakeFiles/test_core.dir/core/test_monitor.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_monitor.cpp.o.d"
  "/root/repo/tests/core/test_policies.cpp" "tests/CMakeFiles/test_core.dir/core/test_policies.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_policies.cpp.o.d"
  "/root/repo/tests/core/test_resource_autonomy.cpp" "tests/CMakeFiles/test_core.dir/core/test_resource_autonomy.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_resource_autonomy.cpp.o.d"
  "/root/repo/tests/core/test_slice_manager.cpp" "tests/CMakeFiles/test_core.dir/core/test_slice_manager.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_slice_manager.cpp.o.d"
  "/root/repo/tests/core/test_system.cpp" "tests/CMakeFiles/test_core.dir/core/test_system.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_system.cpp.o.d"
  "/root/repo/tests/core/test_training.cpp" "tests/CMakeFiles/test_core.dir/core/test_training.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/es_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/es_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/es_env.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/es_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/es_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/es_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/es_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/es_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/es_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/es_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
