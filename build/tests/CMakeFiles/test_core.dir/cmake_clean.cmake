file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_consensus.cpp.o"
  "CMakeFiles/test_core.dir/core/test_consensus.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_coordinator.cpp.o"
  "CMakeFiles/test_core.dir/core/test_coordinator.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_monitor.cpp.o"
  "CMakeFiles/test_core.dir/core/test_monitor.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_policies.cpp.o"
  "CMakeFiles/test_core.dir/core/test_policies.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_resource_autonomy.cpp.o"
  "CMakeFiles/test_core.dir/core/test_resource_autonomy.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_slice_manager.cpp.o"
  "CMakeFiles/test_core.dir/core/test_slice_manager.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_system.cpp.o"
  "CMakeFiles/test_core.dir/core/test_system.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_training.cpp.o"
  "CMakeFiles/test_core.dir/core/test_training.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
