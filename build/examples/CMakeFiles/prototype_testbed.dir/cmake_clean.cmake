file(REMOVE_RECURSE
  "CMakeFiles/prototype_testbed.dir/prototype_testbed.cpp.o"
  "CMakeFiles/prototype_testbed.dir/prototype_testbed.cpp.o.d"
  "prototype_testbed"
  "prototype_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prototype_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
