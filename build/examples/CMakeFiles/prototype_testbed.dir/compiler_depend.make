# Empty compiler generated dependencies file for prototype_testbed.
# This may be replaced when dependencies are built.
