file(REMOVE_RECURSE
  "CMakeFiles/video_analytics_slicing.dir/video_analytics_slicing.cpp.o"
  "CMakeFiles/video_analytics_slicing.dir/video_analytics_slicing.cpp.o.d"
  "video_analytics_slicing"
  "video_analytics_slicing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_analytics_slicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
