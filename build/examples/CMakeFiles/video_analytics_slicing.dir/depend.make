# Empty dependencies file for video_analytics_slicing.
# This may be replaced when dependencies are built.
