# Empty dependencies file for ablation_transport_reconfig.
# This may be replaced when dependencies are built.
