file(REMOVE_RECURSE
  "CMakeFiles/ablation_transport_reconfig.dir/ablation_transport_reconfig.cpp.o"
  "CMakeFiles/ablation_transport_reconfig.dir/ablation_transport_reconfig.cpp.o.d"
  "ablation_transport_reconfig"
  "ablation_transport_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_transport_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
