file(REMOVE_RECURSE
  "CMakeFiles/fig10_training.dir/fig10_training.cpp.o"
  "CMakeFiles/fig10_training.dir/fig10_training.cpp.o.d"
  "fig10_training"
  "fig10_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
