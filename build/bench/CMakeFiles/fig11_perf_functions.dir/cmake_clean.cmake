file(REMOVE_RECURSE
  "CMakeFiles/fig11_perf_functions.dir/fig11_perf_functions.cpp.o"
  "CMakeFiles/fig11_perf_functions.dir/fig11_perf_functions.cpp.o.d"
  "fig11_perf_functions"
  "fig11_perf_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_perf_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
