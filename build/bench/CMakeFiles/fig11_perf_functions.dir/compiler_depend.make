# Empty compiler generated dependencies file for fig11_perf_functions.
# This may be replaced when dependencies are built.
