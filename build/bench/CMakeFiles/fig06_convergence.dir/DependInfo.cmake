
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig06_convergence.cpp" "bench/CMakeFiles/fig06_convergence.dir/fig06_convergence.cpp.o" "gcc" "bench/CMakeFiles/fig06_convergence.dir/fig06_convergence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/es_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/es_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/es_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/es_env.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/es_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/es_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/es_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/es_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/es_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/es_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/es_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
