file(REMOVE_RECURSE
  "CMakeFiles/fig07_resource_orchestration.dir/fig07_resource_orchestration.cpp.o"
  "CMakeFiles/fig07_resource_orchestration.dir/fig07_resource_orchestration.cpp.o.d"
  "fig07_resource_orchestration"
  "fig07_resource_orchestration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_resource_orchestration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
