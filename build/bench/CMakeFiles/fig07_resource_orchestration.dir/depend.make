# Empty dependencies file for fig07_resource_orchestration.
# This may be replaced when dependencies are built.
