file(REMOVE_RECURSE
  "CMakeFiles/ablation_reward_shaping.dir/ablation_reward_shaping.cpp.o"
  "CMakeFiles/ablation_reward_shaping.dir/ablation_reward_shaping.cpp.o.d"
  "ablation_reward_shaping"
  "ablation_reward_shaping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reward_shaping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
