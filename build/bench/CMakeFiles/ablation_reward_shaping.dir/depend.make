# Empty dependencies file for ablation_reward_shaping.
# This may be replaced when dependencies are built.
