# Empty dependencies file for es_bench_common.
# This may be replaced when dependencies are built.
