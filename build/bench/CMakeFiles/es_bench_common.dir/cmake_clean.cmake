file(REMOVE_RECURSE
  "CMakeFiles/es_bench_common.dir/common.cpp.o"
  "CMakeFiles/es_bench_common.dir/common.cpp.o.d"
  "libes_bench_common.a"
  "libes_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
