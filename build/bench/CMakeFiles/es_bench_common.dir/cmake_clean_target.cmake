file(REMOVE_RECURSE
  "libes_bench_common.a"
)
