# Empty compiler generated dependencies file for ablation_ddpg.
# This may be replaced when dependencies are built.
