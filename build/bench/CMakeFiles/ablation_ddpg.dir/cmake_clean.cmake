file(REMOVE_RECURSE
  "CMakeFiles/ablation_ddpg.dir/ablation_ddpg.cpp.o"
  "CMakeFiles/ablation_ddpg.dir/ablation_ddpg.cpp.o.d"
  "ablation_ddpg"
  "ablation_ddpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ddpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
