# Empty dependencies file for ablation_admm_rho.
# This may be replaced when dependencies are built.
