file(REMOVE_RECURSE
  "CMakeFiles/ablation_admm_rho.dir/ablation_admm_rho.cpp.o"
  "CMakeFiles/ablation_admm_rho.dir/ablation_admm_rho.cpp.o.d"
  "ablation_admm_rho"
  "ablation_admm_rho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_admm_rho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
