# Empty compiler generated dependencies file for fig09_scalability.
# This may be replaced when dependencies are built.
