file(REMOVE_RECURSE
  "CMakeFiles/fig09_scalability.dir/fig09_scalability.cpp.o"
  "CMakeFiles/fig09_scalability.dir/fig09_scalability.cpp.o.d"
  "fig09_scalability"
  "fig09_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
