# Empty compiler generated dependencies file for ablation_kernel_split.
# This may be replaced when dependencies are built.
