file(REMOVE_RECURSE
  "CMakeFiles/ablation_kernel_split.dir/ablation_kernel_split.cpp.o"
  "CMakeFiles/ablation_kernel_split.dir/ablation_kernel_split.cpp.o.d"
  "ablation_kernel_split"
  "ablation_kernel_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kernel_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
