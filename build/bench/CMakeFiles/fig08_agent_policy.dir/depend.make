# Empty dependencies file for fig08_agent_policy.
# This may be replaced when dependencies are built.
