file(REMOVE_RECURSE
  "CMakeFiles/fig08_agent_policy.dir/fig08_agent_policy.cpp.o"
  "CMakeFiles/fig08_agent_policy.dir/fig08_agent_policy.cpp.o.d"
  "fig08_agent_policy"
  "fig08_agent_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_agent_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
