// Quickstart: train one orchestration agent and run a coordinated
// two-RA, two-slice EdgeSlice system for a handful of periods.
//
//   ./quickstart [train_steps]
//
// This is the smallest end-to-end tour of the public API:
//   1. build the simulated network environment of Sec. VI-B,
//   2. train a DDPG orchestration agent offline,
//   3. wire environments + policies + performance coordinator into the
//      Alg. 1 workflow and run it,
//   4. read the results off the system monitor.
#include <cstdio>
#include <memory>
#include <string>

#include "core/policies.h"
#include "core/system.h"
#include "core/training.h"
#include "env/service_model.h"
#include "rl/ddpg.h"
#include "rl/frozen.h"

using namespace edgeslice;

int main(int argc, char** argv) {
  const std::size_t train_steps = argc > 1 ? std::stoul(argv[1]) : 12000;
  Rng rng(42);

  // --- 1. The simulated environment ---------------------------------------
  // Two slices with the paper's application archetypes: slice 1 uploads
  // large frames and runs a small YOLO model (traffic-heavy); slice 2 is
  // the opposite (compute-heavy).
  const std::vector<env::AppProfile> profiles{env::slice1_profile(),
                                              env::slice2_profile()};
  const env::DirectServiceModel ground_truth(env::prototype_capacity());
  const auto service_model =
      std::make_shared<env::PerProfileLinearServiceModel>(profiles, ground_truth);

  env::RaEnvironmentConfig env_config;  // prototype defaults: t=1s, T=10, Poisson(10)
  env::RaEnvironment training_env(env_config, profiles, service_model,
                                  env::make_queue_power_perf(/*alpha=*/2.0),
                                  rng.spawn());

  // --- 2. Offline training --------------------------------------------------
  rl::DdpgConfig ddpg;
  ddpg.base.state_dim = training_env.state_dim();
  ddpg.base.action_dim = training_env.action_dim();
  ddpg.base.hidden = 64;
  ddpg.batch_size = 64;
  ddpg.warmup = 128;
  ddpg.noise_decay = 0.9996;
  ddpg.noise_min = 0.08;
  auto agent = std::make_shared<rl::Ddpg>(ddpg, rng);

  core::TrainingConfig training;
  training.steps = train_steps;
  training.validation_every = train_steps / 10;  // keep the best snapshot
  training.validation_coordination = -50.0;
  std::printf("training DDPG agent for %zu steps ...\n", training.steps);
  const auto trained = core::train_agent(*agent, training_env, training, rng);
  std::printf("done; final mean shaped reward: %.2f\n", trained.final_mean_reward);

  // Deploy the best validated policy snapshot, frozen.
  std::shared_ptr<rl::Agent> policy = agent;
  if (trained.best_policy.has_value()) {
    policy = std::make_shared<rl::FrozenActor>(*trained.best_policy, "DDPG");
    std::printf("deploying best validated snapshot (score %.1f)\n",
                trained.best_validation_score);
  }

  // --- 3. The coordinated system (Alg. 1) -----------------------------------
  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  std::vector<std::unique_ptr<core::RaPolicy>> policies;
  for (std::size_t ra = 0; ra < 2; ++ra) {
    environments.push_back(std::make_unique<env::RaEnvironment>(
        env_config, profiles, service_model, env::make_queue_power_perf(),
        rng.spawn()));
    policies.push_back(std::make_unique<core::LearnedPolicy>(policy, /*learn=*/false));
  }
  core::CoordinatorConfig coordinator;
  coordinator.slices = 2;
  coordinator.ras = 2;  // U_min defaults to the paper's -50 per slice
  std::vector<env::RaEnvironment*> env_ptrs{environments[0].get(), environments[1].get()};
  std::vector<core::RaPolicy*> policy_ptrs{policies[0].get(), policies[1].get()};
  core::EdgeSliceSystem system(env_ptrs, policy_ptrs, coordinator);

  std::printf("\nperiod | system perf | slice1 perf | slice2 perf | SLA ok\n");
  for (int period = 0; period < 8; ++period) {
    const auto result = system.run_period();
    std::printf("%6d | %11.1f | %11.1f | %11.1f | %s\n", period + 1,
                result.system_performance, result.slice_performance[0],
                result.slice_performance[1],
                system.coordinator().sla_satisfied(0) &&
                        system.coordinator().sla_satisfied(1)
                    ? "yes"
                    : "no");
  }

  // --- 4. Inspect the monitor ------------------------------------------------
  const auto series = system.monitor().system_performance_series();
  std::printf("\nper-interval system performance (last period):");
  for (std::size_t t = series.size() - 10; t < series.size(); ++t) {
    std::printf(" %.0f", series[t]);
  }
  std::printf("\n");
  return 0;
}
