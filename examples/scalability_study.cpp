// Scalability study: a trace-driven simulation across many RAs, in the
// style of Sec. VII-D — 5 slices, Trentino-like diurnal traffic, 24
// intervals per period.
//
//   ./scalability_study [ras] [train_steps]
#include <cstdio>
#include <memory>
#include <string>

#include "core/policies.h"
#include "core/system.h"
#include "core/training.h"
#include "env/service_model.h"
#include "rl/ddpg.h"
#include "trace/trace.h"

using namespace edgeslice;

int main(int argc, char** argv) {
  const std::size_t ras = argc > 1 ? std::stoul(argv[1]) : 6;
  const std::size_t train_steps = argc > 2 ? std::stoul(argv[2]) : 10000;
  const std::size_t slices = 5;
  Rng rng(11);

  // --- Five slices with mixed application demands ---------------------------
  std::vector<env::AppProfile> profiles{env::slice1_profile(), env::slice2_profile()};
  profiles.push_back(env::make_profile(env::FrameResolution::R300x300,
                                       env::YoloModel::Y416));
  profiles.push_back(env::make_profile(env::FrameResolution::R500x500,
                                       env::YoloModel::Y608));
  profiles.push_back(env::make_profile(env::FrameResolution::R100x100,
                                       env::YoloModel::Y320));
  const env::DirectServiceModel ground_truth(env::prototype_capacity());
  const auto model =
      std::make_shared<env::PerProfileLinearServiceModel>(profiles, ground_truth);

  env::RaEnvironmentConfig config;
  config.slices = slices;
  config.intervals_per_period = 24;  // one "day" per coordination period

  // --- Synthetic Trentino trace drives per-RA traffic ------------------------
  trace::TraceConfig trace_config;
  trace_config.cells = ras;
  trace_config.days = 3;
  Rng trace_rng(99);
  const trace::TraceDataset dataset(trace_config, trace_rng);

  // --- Train one agent and deploy it to every RA -----------------------------
  env::RaEnvironment training_env(config, profiles, model,
                                  env::make_queue_power_perf(), rng.spawn());
  rl::DdpgConfig ddpg;
  ddpg.base.state_dim = training_env.state_dim();
  ddpg.base.action_dim = training_env.action_dim();
  ddpg.base.hidden = 64;
  ddpg.batch_size = 64;
  ddpg.warmup = 128;
  ddpg.noise_decay = 0.9996;
  ddpg.noise_min = 0.08;
  auto agent = std::make_shared<rl::Ddpg>(ddpg, rng);
  core::TrainingConfig training;
  training.steps = train_steps;
  training.randomize_traffic = true;
  std::printf("training shared agent for %zu RAs (%zu steps) ...\n", ras,
              training.steps);
  core::train_agent(*agent, training_env, training, rng);

  // --- Build the network ------------------------------------------------------
  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  std::vector<std::unique_ptr<core::RaPolicy>> policies;
  for (std::size_t j = 0; j < ras; ++j) {
    environments.push_back(std::make_unique<env::RaEnvironment>(
        config, profiles, model, env::make_queue_power_perf(), rng.spawn()));
    const auto daily = dataset.normalized_daily_profile(j, 24, /*peak=*/9.0);
    std::vector<std::vector<double>> per_slice(slices, daily);
    // Stagger the slices' peaks within the cell's curve.
    for (std::size_t i = 0; i < slices; ++i) {
      std::rotate(per_slice[i].begin(),
                  per_slice[i].begin() + static_cast<std::ptrdiff_t>(i * 2),
                  per_slice[i].end());
    }
    environments[j]->set_arrival_profiles(per_slice);
    policies.push_back(std::make_unique<core::LearnedPolicy>(agent, false));
  }
  core::CoordinatorConfig coordinator;
  coordinator.slices = slices;
  coordinator.ras = ras;
  std::vector<env::RaEnvironment*> env_ptrs;
  std::vector<core::RaPolicy*> policy_ptrs;
  for (auto& e : environments) env_ptrs.push_back(e.get());
  for (auto& p : policies) policy_ptrs.push_back(p.get());
  core::EdgeSliceSystem system(env_ptrs, policy_ptrs, coordinator);

  // --- Simulate a week of coordinated operation -------------------------------
  std::printf("\n  day | system perf | perf per RA | coordinator\n");
  for (int day = 0; day < 7; ++day) {
    const auto result = system.run_period();
    std::printf("  %3d | %11.1f | %11.1f | %s\n", day + 1, result.system_performance,
                result.system_performance / static_cast<double>(ras),
                result.coordinator_converged ? "converged" : "iterating");
  }

  // Busiest vs quietest hour across the final day.
  const auto series = system.monitor().system_performance_series();
  double worst = 0.0;
  std::size_t worst_hour = 0;
  for (std::size_t t = series.size() - 24; t < series.size(); ++t) {
    if (series[t] < worst) {
      worst = series[t];
      worst_hour = t % 24;
    }
  }
  std::printf("\ntoughest hour of the last day: %zu:00 (system perf %.1f)\n",
              worst_hour, worst);
  return 0;
}
