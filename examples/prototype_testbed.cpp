// Prototype testbed walkthrough: a narrative tour of the middleware that
// the paper's Fig. 4 hardware testbed exercises — without the hardware.
//
// Shows each mechanism of Sec. V in isolation:
//   * S1AP-based IMSI -> slice association at the eNodeB,
//   * slice-aware MAC scheduling (zero-quota slices are not scheduled),
//   * OpenFlow meter programming and the hitless parallel reconfiguration,
//   * MPS-style GPU sharing and the kernel-split quota enforcement,
//   * the system monitor's association database and RC-M reports.
#include <cstdio>

#include "core/monitor.h"
#include "core/resource_autonomy.h"
#include "transport/controller.h"

using namespace edgeslice;

int main() {
  Rng rng(3);
  std::printf("=== EdgeSlice prototype middleware walkthrough ===\n");

  // --- RA with Table II hardware -------------------------------------------
  core::ResourceAutonomy ra(core::prototype_ra_config(0), rng);
  std::printf("\n[RA 0] eNodeB 5 MHz (%zu PRBs), 6-switch transport @ 80 Mbps, "
              "GPU %u threads\n",
              ra.radio().total_prbs(), 51200u);

  // --- 1. Attach: S1AP IMSI extraction --------------------------------------
  core::SystemMonitor monitor(2, 1);
  monitor.register_user(core::UserAssociation{"310170000000001", "10.0.0.1", 0});
  monitor.register_user(core::UserAssociation{"310170000000002", "10.0.1.1", 1});
  ra.attach_user("310170000000001", "10.0.0.1", 1, 0);
  ra.attach_user("310170000000002", "10.0.1.1", 2, 1);
  std::printf("\n[1] S1AP attach: IMSI 310170000000001 -> slice %zu, "
              "IMSI 310170000000002 -> slice %zu (no UE modification)\n",
              monitor.slice_of_imsi("310170000000001"),
              monitor.slice_of_imsi("310170000000002"));

  // --- 2. Radio: zero-quota slices are not scheduled -------------------------
  ra.apply({1.0, 0.5, 0.5, 0.0, 0.5, 0.5});  // slice 1 has no radio share
  ra.radio().enqueue_bits(1, 5e5);
  ra.radio().enqueue_bits(2, 5e5);
  auto served = ra.radio().run(100, rng);
  std::printf("\n[2] MAC scheduler, slice1 radio=0%%: served slice0=%.0f bits, "
              "slice1=%.0f bits (zero-quota users never scheduled)\n",
              served[0], served[1]);

  // --- 3. Transport: hitless vs naive reconfiguration ------------------------
  std::printf("\n[3] transport reconfiguration:\n");
  for (int i = 0; i < 5; ++i) {
    ra.transport().set_slice_share(0, 0.3 + 0.1 * i);
  }
  std::printf("    5 hitless share changes -> outage %.3f s\n",
              ra.transport().total_outage_seconds());
  transport::TransportManagerConfig naive_config;
  naive_config.strategy = transport::ReconfigStrategy::NaiveDeleteRecreate;
  transport::TransportManager naive(naive_config);
  for (int i = 0; i < 5; ++i) {
    naive.set_slice_share(0, 0.3 + 0.1 * i);
  }
  std::printf("    same changes, naive delete-recreate -> outage %.3f s\n",
              naive.total_outage_seconds());

  // --- 4. Compute: kernel-split quota enforcement ----------------------------
  std::printf("\n[4] GPU kernel-split:\n");
  ra.computing().set_slice_share(0, 0.25);
  ra.computing().set_slice_share(1, 0.75);
  ra.computing().submit(0, compute::Kernel{51200, 5000.0});  // full-GPU kernel
  ra.computing().submit(1, compute::Kernel{38400, 5000.0});
  const auto done = ra.computing().run(0.1, 1e-3);  // both saturated throughout
  std::printf("    25%%/75%% quotas, both tenants saturating: work done "
              "%.0f vs %.0f (ratio %.2f, quota ratio 0.33)\n",
              done[0], done[1], done[0] / done[1]);

  // --- 5. Monitor: RC-M report -------------------------------------------------
  std::printf("\n[5] monitor: association DB holds %zu users; RC-M reports flow "
              "coordinator-ward each period.\n",
              monitor.user_count());
  std::printf("\nAll middleware mechanisms exercised. See "
              "examples/video_analytics_slicing.cpp for the full loop.\n");
  return 0;
}
