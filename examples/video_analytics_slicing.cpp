// Video-analytics slicing: the paper's motivating workload (Sec. VII-A)
// driven through the full middleware stack.
//
// Two tenants buy slices for mobile video analytics:
//   slice 0 — "dashcam": 500x500 frames, YOLO-320 (traffic-heavy)
//   slice 1 — "inspection": 100x100 frames, YOLO-608 (compute-heavy)
// Each RA owns an eNodeB (RadioManager), a 6-switch path
// (TransportManager) and a GPU (ComputingManager). A trained orchestration
// agent decides the end-to-end shares; the managers enforce them at
// runtime; per-task latency is measured through the substrates.
#include <cstdio>
#include <memory>

#include "core/policies.h"
#include "core/resource_autonomy.h"
#include "core/training.h"
#include "env/environment.h"
#include "env/service_model.h"
#include "rl/ddpg.h"

using namespace edgeslice;

namespace {

/// Push one inference task through radio -> transport -> GPU of an RA and
/// return its end-to-end latency in milliseconds.
double measure_task_latency(core::ResourceAutonomy& ra, std::size_t slice,
                            std::size_t user_id, const env::AppProfile& app, Rng& rng) {
  // Uplink: enqueue the frame at the eNodeB, run TTIs until delivered.
  ra.radio().enqueue_bits(user_id, app.uplink_bits);
  double radio_ms = 0.0;
  while (ra.radio().user_backlog(user_id) > 0.0 && radio_ms < 5000.0) {
    ra.radio().run(1, rng);
    radio_ms += 1.0;
  }
  // Transport: time to push the frame through the metered path.
  const double rate_bps = ra.transport().slice_rate_mbps(slice) * 1e6;
  const double transport_ms = rate_bps > 0.0 ? app.uplink_bits / rate_bps * 1e3 : 5000.0;
  // Compute: kernel-split inference on the slice's GPU quota.
  ra.computing().submit(slice, compute::Kernel{20000, app.compute_work});
  double compute_ms = 0.0;
  while (!ra.computing().idle(slice) && compute_ms < 5000.0) {
    ra.computing().run(1e-3, 1e-3);
    compute_ms += 1.0;
  }
  return radio_ms + transport_ms + compute_ms;
}

}  // namespace

int main() {
  Rng rng(7);
  std::printf("=== EdgeSlice video-analytics slicing demo ===\n\n");

  // --- Slice tenants and their SLAs ----------------------------------------
  const std::vector<env::AppProfile> profiles{env::slice1_profile(),
                                              env::slice2_profile()};
  std::printf("slice 0 (%s): %.0f kbit/frame, %.0f work units/frame\n",
              profiles[0].name.c_str(), profiles[0].uplink_bits / 1e3,
              profiles[0].compute_work);
  std::printf("slice 1 (%s): %.0f kbit/frame, %.0f work units/frame\n\n",
              profiles[1].name.c_str(), profiles[1].uplink_bits / 1e3,
              profiles[1].compute_work);

  // --- Train the orchestration agent offline -------------------------------
  const env::DirectServiceModel ground_truth(env::prototype_capacity());
  const auto service_model =
      std::make_shared<env::PerProfileLinearServiceModel>(profiles, ground_truth);
  env::RaEnvironmentConfig config;
  env::RaEnvironment training_env(config, profiles, service_model,
                                  env::make_queue_power_perf(), rng.spawn());
  rl::DdpgConfig ddpg;
  ddpg.base.state_dim = training_env.state_dim();
  ddpg.base.action_dim = training_env.action_dim();
  ddpg.base.hidden = 64;
  ddpg.batch_size = 64;
  ddpg.warmup = 128;
  ddpg.noise_decay = 0.9996;
  ddpg.noise_min = 0.08;
  auto agent = std::make_shared<rl::Ddpg>(ddpg, rng);
  core::TrainingConfig training;
  training.steps = 12000;
  std::printf("training the orchestration agent (%zu steps) ...\n\n", training.steps);
  core::train_agent(*agent, training_env, training, rng);

  // --- Build one RA with real managers and attach users ---------------------
  core::ResourceAutonomy ra(core::prototype_ra_config(0), rng);
  ra.attach_user("310170000000001", "10.0.0.1", /*user_id=*/1, /*slice=*/0);
  ra.attach_user("310170000000002", "10.0.1.1", /*user_id=*/2, /*slice=*/1);
  std::printf("attached 2 users via S1AP; IMSI -> slice mapping live at the eNB\n");

  // --- Ask the agent for an allocation and enforce it through VR ------------
  env::RaEnvironment live_env(config, profiles, service_model,
                              env::make_queue_power_perf(), rng.spawn());
  live_env.set_coordination({-25.0, -25.0});  // an SLA-shaped target
  // Warm the queues so the agent sees realistic traffic.
  live_env.step(std::vector<double>(6, 0.0));
  const auto action = agent->act(live_env.state(), /*explore=*/false);
  const auto messages = ra.apply(action);
  std::printf("agent decided; %zu VR messages dispatched to the managers:\n",
              messages.size());
  const char* domains[] = {"radio    ", "transport", "computing"};
  for (const auto& m : messages) {
    std::printf("  VR{%s slice %zu -> %4.1f%%}\n",
                domains[static_cast<int>(m.domain)], m.slice, m.fraction * 100.0);
  }
  std::printf("enforced: slice0 %zu PRBs / %.1f Mbps / %zu threads; "
              "slice1 %zu PRBs / %.1f Mbps / %zu threads\n\n",
              ra.radio().slice_prbs(0), ra.transport().slice_rate_mbps(0),
              ra.computing().slice_threads(0), ra.radio().slice_prbs(1),
              ra.transport().slice_rate_mbps(1), ra.computing().slice_threads(1));

  // --- Measure per-task latency through the actual substrates ----------------
  for (std::size_t slice = 0; slice < 2; ++slice) {
    double total = 0.0;
    const int tasks = 5;
    for (int t = 0; t < tasks; ++t) {
      total += measure_task_latency(ra, slice, slice + 1, profiles[slice], rng);
    }
    std::printf("slice %zu mean end-to-end task latency: %.1f ms\n", slice,
                total / tasks);
  }
  std::printf("\n(hitless transport reconfigurations so far: outage = %.3f s)\n",
              ra.transport().total_outage_seconds());
  return 0;
}
