// bench_ledger CLI: append bench reports to BENCH_HISTORY.jsonl, diff
// two entries with a tolerance band, or validate the ledger.
//
//   bench_ledger append <bench.json> [--history FILE] [--sha SHA] [--label L]
//   bench_ledger diff   [--history FILE] [--a I] [--b J] [--tolerance F]
//   bench_ledger check  [--history FILE]
//
// `diff` compares entry J (candidate, default: last) against entry I
// (baseline, default: second-to-last) and exits 1 when any directed
// metric is worse than the baseline by more than the tolerance fraction
// (default 0.05) — the CI gate for periods/second and p99 solve latency.
// `check` parses every ledger line and exits 1 on the first malformed
// one (a missing ledger is fine: nothing recorded yet). Usage errors
// exit 2.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_ledger_lib.h"

namespace {

using edgeslice::tools::BenchEntry;

constexpr const char* kDefaultHistory = "BENCH_HISTORY.jsonl";

int usage() {
  std::fprintf(
      stderr,
      "usage: bench_ledger append <bench.json> [--history FILE] [--sha SHA] "
      "[--label L]\n"
      "       bench_ledger diff   [--history FILE] [--a I] [--b J] "
      "[--tolerance F]\n"
      "       bench_ledger check  [--history FILE]\n");
  return 2;
}

bool parse_long(const char* s, long& out) {
  char* end = nullptr;
  out = std::strtol(s, &end, 10);
  return end != nullptr && *end == '\0' && end != s;
}

bool parse_fraction(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != nullptr && *end == '\0' && end != s && out >= 0.0;
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return "";
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ok = true;
  return buf.str();
}

int cmd_append(const std::string& bench_path, const std::string& history,
               const std::string& sha, const std::string& label) {
  bool ok = false;
  const std::string text = read_file(bench_path, ok);
  if (!ok) {
    std::fprintf(stderr, "bench_ledger: cannot read %s\n", bench_path.c_str());
    return 2;
  }
  BenchEntry entry;
  try {
    entry = edgeslice::tools::make_entry(text, sha, label);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  std::ofstream out(history, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "bench_ledger: cannot append to %s\n", history.c_str());
    return 1;
  }
  const std::string line = edgeslice::tools::encode_entry(entry);
  out << line << "\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "bench_ledger: write to %s failed\n", history.c_str());
    return 1;
  }
  std::printf("%s\n", line.c_str());
  return 0;
}

int cmd_diff(const std::string& history, long a_index, long b_index,
             double tolerance) {
  std::vector<BenchEntry> entries;
  try {
    entries = edgeslice::tools::load_history(history);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (entries.size() < 2 && (a_index < 0 || b_index < 0)) {
    std::fprintf(stderr, "bench_ledger: need at least two entries in %s (have %zu)\n",
                 history.c_str(), entries.size());
    return 2;
  }
  const long n = static_cast<long>(entries.size());
  if (a_index < 0) a_index = n - 2;
  if (b_index < 0) b_index = n - 1;
  if (a_index >= n || b_index >= n) {
    std::fprintf(stderr, "bench_ledger: entry index out of range (0..%ld)\n", n - 1);
    return 2;
  }
  const BenchEntry& a = entries[static_cast<std::size_t>(a_index)];
  const BenchEntry& b = entries[static_cast<std::size_t>(b_index)];
  const auto result = edgeslice::tools::diff_entries(a, b, tolerance);
  std::printf("baseline  [%ld] sha=%s label=%s fingerprint=%s\n", a_index,
              a.sha.c_str(), a.label.c_str(), a.fingerprint.c_str());
  std::printf("candidate [%ld] sha=%s label=%s fingerprint=%s\n", b_index,
              b.sha.c_str(), b.label.c_str(), b.fingerprint.c_str());
  if (!result.fingerprint_match) {
    std::printf("note: config fingerprints differ — comparison is advisory\n");
  }
  for (const auto& row : result.rows) {
    const char* direction = row.direction > 0   ? "up-good"
                            : row.direction < 0 ? "down-good"
                                                : "untracked";
    std::printf("%-40s %14.6g -> %14.6g  %+7.2f%%  [%s]%s\n", row.key.c_str(),
                row.a, row.b, 100.0 * row.delta_frac, direction,
                row.regression ? "  REGRESSION" : "");
  }
  if (result.regression) {
    std::printf("result: REGRESSION (tolerance %.1f%%)\n", 100.0 * tolerance);
    return 1;
  }
  std::printf("result: ok (tolerance %.1f%%)\n", 100.0 * tolerance);
  return 0;
}

int cmd_check(const std::string& history) {
  try {
    const auto entries = edgeslice::tools::load_history(history);
    std::printf("bench_ledger: %s ok (%zu entries)\n", history.c_str(),
                entries.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  std::string history = kDefaultHistory;
  std::string sha = "unknown";
  std::string label;
  std::string bench_path;
  long a_index = -1;
  long b_index = -1;
  double tolerance = 0.05;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_ledger: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--history") {
      const char* v = need_value("--history");
      if (v == nullptr) return 2;
      history = v;
    } else if (arg == "--sha") {
      const char* v = need_value("--sha");
      if (v == nullptr) return 2;
      sha = v;
    } else if (arg == "--label") {
      const char* v = need_value("--label");
      if (v == nullptr) return 2;
      label = v;
    } else if (arg == "--a") {
      const char* v = need_value("--a");
      if (v == nullptr || !parse_long(v, a_index) || a_index < 0) return usage();
    } else if (arg == "--b") {
      const char* v = need_value("--b");
      if (v == nullptr || !parse_long(v, b_index) || b_index < 0) return usage();
    } else if (arg == "--tolerance") {
      const char* v = need_value("--tolerance");
      if (v == nullptr || !parse_fraction(v, tolerance)) return usage();
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_ledger: unknown flag %s\n", arg.c_str());
      return 2;
    } else if (bench_path.empty()) {
      bench_path = arg;
    } else {
      return usage();
    }
  }
  if (mode == "append") {
    if (bench_path.empty()) return usage();
    if (label.empty()) label = bench_path;
    return cmd_append(bench_path, history, sha, label);
  }
  if (mode == "diff") {
    if (!bench_path.empty()) return usage();
    return cmd_diff(history, a_index, b_index, tolerance);
  }
  if (mode == "check") {
    if (!bench_path.empty()) return usage();
    return cmd_check(history);
  }
  return usage();
}
