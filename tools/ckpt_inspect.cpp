// ckpt-inspect: dump an ESCK checkpoint container (FORMATS.md Sec. 2).
//
//   ckpt_inspect --in edgeslice_train.ckpt
//
// Prints the header (version, fingerprint digest, section count), the
// full section table (kind, index, payload size, payload CRC), and the
// configuration fingerprint text. Everything printed has already been
// validated — bad magic, CRC mismatches, truncation all exit 1 with the
// reader's error naming the failure — so a clean exit IS an integrity
// check: "ckpt_inspect --in X" doubles as "is X a restorable checkpoint".
#include <cstdio>
#include <exception>
#include <string>

#include "ckpt/agent_cache.h"
#include "ckpt/container.h"
#include "ckpt/format.h"
#include "common/binio.h"
#include "common/cli.h"

using namespace edgeslice;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv, {"in", "fingerprint"});
  if (!args.has("in")) {
    std::fprintf(stderr, "ckpt_inspect: need --in <checkpoint file>\n");
    return 2;
  }
  const std::string path = args.get("in", "");

  try {
    const ckpt::CheckpointReader reader = ckpt::CheckpointReader::from_file(path);
    const std::string& fingerprint = reader.fingerprint();

    std::printf("file:               %s\n", path.c_str());
    std::printf("format:             ESCK v%u\n", ckpt::kCkptFormatVersion);
    std::printf("fingerprint digest: %s\n",
                ckpt::fingerprint_digest(fingerprint).c_str());
    std::printf("fingerprint bytes:  %zu\n", fingerprint.size());
    std::printf("sections:           %zu\n", reader.sections().size());
    std::printf("\n%-12s %-6s %12s %10s\n", "kind", "index", "bytes", "crc32");
    std::size_t total = 0;
    for (const ckpt::Section& section : reader.sections()) {
      std::printf("%-12s %-6u %12zu 0x%08x\n",
                  ckpt::section_kind_name(section.kind), section.index,
                  section.payload.size(), crc32(section.payload));
      total += section.payload.size();
    }
    std::printf("%-12s %-6s %12zu\n", "total", "", total);

    if (args.get_bool("fingerprint", false) && !fingerprint.empty()) {
      std::printf("\n--- fingerprint ---\n%s", fingerprint.c_str());
      if (fingerprint.back() != '\n') std::printf("\n");
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ckpt_inspect: %s\n", error.what());
    return 1;
  }
  return 0;
}
