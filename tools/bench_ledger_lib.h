// Bench regression ledger: append BENCH_*.json runs to a JSONL history
// and diff two entries with tolerance bands (ROADMAP: "wire
// BENCH_city.json into regression tracking").
//
// Every ledger entry is one flat JSON line keyed by git SHA and a config
// fingerprint (FNV-1a over the run's configuration fields), so entries
// are only meaningfully comparable when their fingerprints match — a
// throughput drop measured at a different scale is not a regression.
// Metric direction is a fixed table (periods/second up is good, p99
// solve latency down is good); metrics the table does not know are
// reported but never gate.
//
// The library is separate from the CLI (tools/bench_ledger.cpp) so the
// append/diff/fingerprint logic is unit-testable in-process.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace edgeslice::tools {

/// One ledger entry: identity + raw config fields + numeric metrics.
struct BenchEntry {
  std::string sha;          // git SHA of the measured tree ("unknown" ok)
  std::string label;        // free-form run label ("city", "training", ...)
  std::string fingerprint;  // config_fingerprint() of the config fields
  std::map<std::string, std::string> config;  // raw JSON value tokens
  std::map<std::string, double> metrics;
};

/// Parse the top-level scalar fields of one flat JSON object into
/// key -> raw value token ("640.44", "\"avx2\"" stripped to avx2, "true").
/// Nested arrays/objects are skipped wholesale. Throws std::runtime_error
/// on malformed input.
std::map<std::string, std::string> parse_flat_json(const std::string& text);

/// True for fields that describe the run's configuration (scale, seed,
/// thread count, backend) rather than its measured outcome.
bool is_config_key(const std::string& key);

/// FNV-1a 64 over the sorted "key=value" config pairs, "0x%016x"-formatted.
std::string config_fingerprint(const std::map<std::string, std::string>& config);

/// Build an entry from a BENCH_*.json document: config keys are
/// fingerprinted, every other numeric field becomes a metric.
BenchEntry make_entry(const std::string& bench_json, const std::string& sha,
                      const std::string& label);

/// One JSONL line: {"sha":..., "label":..., "fingerprint":...,
/// "config.<k>":..., "metric.<k>":...} — flat on purpose, so
/// decode_entry reuses parse_flat_json.
std::string encode_entry(const BenchEntry& entry);
BenchEntry decode_entry(const std::string& line);

/// All entries of a JSONL history file, oldest first. Blank lines are
/// skipped; a malformed line throws. A missing file returns empty.
std::vector<BenchEntry> load_history(const std::string& path);

/// +1: higher is better; -1: lower is better; 0: unknown (never gates).
/// Directions assume positive-valued metrics (all known ones are).
int metric_direction(const std::string& key);

struct DiffRow {
  std::string key;
  double a = 0.0;
  double b = 0.0;
  double delta_frac = 0.0;  // (b - a) / |a|, 0 when a == 0
  int direction = 0;
  bool regression = false;
};

struct DiffResult {
  std::vector<DiffRow> rows;       // metrics present in both entries
  bool fingerprint_match = false;  // comparing different configs is advisory
  bool regression = false;         // any directed metric worsened past tolerance
};

/// Compare entry `b` (candidate) against `a` (baseline). A directed
/// metric regresses when it is worse than the baseline by more than
/// `tolerance` (a fraction, e.g. 0.05 = 5%).
DiffResult diff_entries(const BenchEntry& a, const BenchEntry& b, double tolerance);

}  // namespace edgeslice::tools
