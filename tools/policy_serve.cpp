// policy-serve: the policy-serving daemon (EXPERIMENTS.md "Policy
// serving").
//
// Loads a trained policy out of the content-addressed agent cache (or a
// bare ESCK file) and serves allocation decisions over the ESFR framed
// protocol until SIGINT/SIGTERM:
//
//   policy_serve --cache-dir .edgeslice_policies --digest 9f2a...
//       --port 7070 --telemetry-port 9090
//
// --port 0 (the default) picks an ephemeral port; --port-file publishes
// the bound port atomically for scripts and tests to discover. The
// /metrics endpoint (--telemetry-port) exposes the serve.* family:
// decision-latency histogram, queue-depth gauge, shed counter.
#include <csignal>
#include <cstdio>
#include <ctime>
#include <exception>
#include <string>

#include "common/binio.h"
#include "common/cli.h"
#include "common/metrics.h"
#include "nn/gemm.h"
#include "obs/telemetry_server.h"
#include "serve/policy_loader.h"
#include "serve/server.h"

using namespace edgeslice;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"cache-dir", "digest", "policy-file", "port", "bind",
                      "port-file", "batch-max", "queue-limit", "poll-ms",
                      "telemetry-port", "gemm", "status-every"});

  if (args.has("gemm")) {
    nn::set_gemm_backend(args.get("gemm", "auto").c_str());
  }

  serve::LoadedPolicy loaded = [&] {
    try {
      if (args.has("policy-file")) {
        return serve::load_policy_file(args.get("policy-file", ""));
      }
      if (!args.has("digest")) {
        std::fprintf(stderr,
                     "policy_serve: need --digest <hex16> (with --cache-dir) "
                     "or --policy-file <path>\n");
        std::exit(2);
      }
      return serve::load_policy_by_digest(
          args.get("cache-dir", ".edgeslice_policies"), args.get("digest", ""));
    } catch (const std::exception& error) {
      std::fprintf(stderr, "policy_serve: %s\n", error.what());
      std::exit(1);
    }
  }();

  serve::PolicyServerConfig config;
  config.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  config.bind_address = args.get("bind", config.bind_address);
  config.batch_max = static_cast<std::size_t>(
      args.get_int("batch-max", static_cast<std::int64_t>(config.batch_max)));
  config.queue_limit = static_cast<std::size_t>(
      args.get_int("queue-limit", static_cast<std::int64_t>(config.queue_limit)));
  config.poll_ms = static_cast<int>(args.get_int("poll-ms", config.poll_ms));
  config.policy_digest = loaded.digest;

  serve::PolicyServer server(std::move(loaded.policy), config);
  if (!server.start()) {
    std::fprintf(stderr, "policy_serve: cannot bind %s:%u\n",
                 config.bind_address.c_str(), config.port);
    return 1;
  }

  const std::int64_t telemetry_port = args.get_int("telemetry-port", -1);
  obs::TelemetryServerConfig telemetry_config;
  telemetry_config.port =
      telemetry_port >= 0 ? static_cast<std::uint16_t>(telemetry_port) : 0;
  obs::TelemetryServer telemetry(telemetry_config);
  if (telemetry_port >= 0 && telemetry.start()) {
    std::fprintf(stderr, "policy_serve: telemetry on http://127.0.0.1:%u/metrics\n",
                 telemetry.port());
  }

  std::fprintf(stderr,
               "policy_serve: serving policy %s (%zu -> %zu) on %s:%u "
               "(batch-max %zu, queue-limit %zu, gemm %s)\n",
               server.config().policy_digest.c_str(), server.policy().in_dim(),
               server.policy().out_dim(), config.bind_address.c_str(),
               server.port(), config.batch_max, config.queue_limit,
               nn::gemm_backend_name(nn::active_gemm_backend()));
  if (args.has("port-file")) {
    // Atomic so a watcher never reads a half-written port number.
    if (!atomic_write_file(args.get("port-file", ""),
                           std::to_string(server.port()) + "\n")) {
      std::fprintf(stderr, "policy_serve: cannot write --port-file\n");
      server.stop();
      return 1;
    }
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  const std::int64_t status_every = args.get_int("status-every", 10);
  std::uint64_t last_decided = 0;
  std::int64_t slept_ms = 0;
  while (g_stop == 0) {
    struct timespec slice = {0, 100 * 1000 * 1000};
    nanosleep(&slice, nullptr);
    slept_ms += 100;
    if (status_every > 0 && slept_ms >= status_every * 1000) {
      slept_ms = 0;
      const serve::ServeCounters counters = server.counters();
      std::fprintf(stderr,
                   "policy_serve: decided %llu (+%llu), shed %llu, rejected %llu, "
                   "ticks %llu, connections accepted %llu\n",
                   static_cast<unsigned long long>(counters.decided),
                   static_cast<unsigned long long>(counters.decided - last_decided),
                   static_cast<unsigned long long>(counters.shed),
                   static_cast<unsigned long long>(counters.rejected),
                   static_cast<unsigned long long>(counters.ticks),
                   static_cast<unsigned long long>(counters.accepted));
      last_decided = counters.decided;
    }
  }

  std::fprintf(stderr, "policy_serve: shutting down\n");
  telemetry.stop();
  server.stop();
  return 0;
}
