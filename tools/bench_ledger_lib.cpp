#include "bench_ledger_lib.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace edgeslice::tools {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("bench_ledger: " + what);
}

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r'))
    ++i;
  return i;
}

/// Read a JSON string starting at the opening quote; returns the
/// unescaped contents and advances past the closing quote.
std::string read_string(const std::string& s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') fail("expected string");
  ++i;
  std::string out;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      ++i;
      if (i >= s.size()) fail("truncated escape");
      switch (s[i]) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        default: out.push_back(s[i]); break;
      }
    } else {
      out.push_back(s[i]);
    }
    ++i;
  }
  if (i >= s.size()) fail("unterminated string");
  ++i;  // closing quote
  return out;
}

/// Skip a balanced [...] or {...} (strings handled), starting at the
/// opening bracket; advances past the matching close.
void skip_nested(const std::string& s, std::size_t& i) {
  int depth = 0;
  do {
    if (i >= s.size()) fail("unterminated array/object");
    const char c = s[i];
    if (c == '"') {
      read_string(s, i);
      continue;
    }
    if (c == '[' || c == '{') ++depth;
    if (c == ']' || c == '}') --depth;
    ++i;
  } while (depth > 0);
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Format a double the way the benches do: enough digits to round-trip.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool parse_double(const std::string& token, double& out) {
  if (token.empty()) return false;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return end != nullptr && *end == '\0' && std::isfinite(out);
}

}  // namespace

std::map<std::string, std::string> parse_flat_json(const std::string& text) {
  std::map<std::string, std::string> fields;
  std::size_t i = skip_ws(text, 0);
  if (i >= text.size() || text[i] != '{') fail("expected object");
  ++i;
  i = skip_ws(text, i);
  if (i < text.size() && text[i] == '}') return fields;
  for (;;) {
    i = skip_ws(text, i);
    const std::string key = read_string(text, i);
    i = skip_ws(text, i);
    if (i >= text.size() || text[i] != ':') fail("expected ':' after key " + key);
    ++i;
    i = skip_ws(text, i);
    if (i >= text.size()) fail("truncated value of " + key);
    if (text[i] == '"') {
      fields[key] = read_string(text, i);
    } else if (text[i] == '[' || text[i] == '{') {
      skip_nested(text, i);  // arrays/objects are not ledger material
    } else {
      std::string token;
      while (i < text.size() && text[i] != ',' && text[i] != '}' &&
             text[i] != ' ' && text[i] != '\n' && text[i] != '\t' && text[i] != '\r') {
        token.push_back(text[i]);
        ++i;
      }
      if (token.empty()) fail("empty value of " + key);
      fields[key] = token;
    }
    i = skip_ws(text, i);
    if (i >= text.size()) fail("unterminated object");
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] == '}') return fields;
    fail("expected ',' or '}' after value of " + key);
  }
}

bool is_config_key(const std::string& key) {
  static const char* kConfigKeys[] = {
      "ras", "slices_per_ra", "periods", "intervals_per_period", "seed",
      "threads", "threads_timed", "hardware_threads", "start_period",
      "timing_jobs", "timing_steps_per_job", "gemm_backend", "workers",
      "telemetry_interval", "state_dim", "action_dim", "hidden_dim",
      "batch_max", "queue_limit", "connections", "offered_rate", "requests",
  };
  for (const char* k : kConfigKeys) {
    if (key == k) return true;
  }
  return false;
}

std::string config_fingerprint(const std::map<std::string, std::string>& config) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  const auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
  };
  for (const auto& [key, value] : config) {  // std::map: sorted keys
    mix(key);
    mix("=");
    mix(value);
    mix("\n");
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(h));
  return buf;
}

BenchEntry make_entry(const std::string& bench_json, const std::string& sha,
                      const std::string& label) {
  BenchEntry entry;
  entry.sha = sha;
  entry.label = label;
  for (const auto& [key, value] : parse_flat_json(bench_json)) {
    if (is_config_key(key)) {
      entry.config[key] = value;
      continue;
    }
    double v = 0.0;
    if (parse_double(value, v)) entry.metrics[key] = v;
    // Non-numeric non-config fields (digests, bools-as-flags) are
    // identity/config-adjacent but unlisted: leave them out.
  }
  entry.fingerprint = config_fingerprint(entry.config);
  return entry;
}

std::string encode_entry(const BenchEntry& entry) {
  std::ostringstream out;
  out << "{\"sha\": \"" << json_escape(entry.sha) << "\", \"label\": \""
      << json_escape(entry.label) << "\", \"fingerprint\": \""
      << json_escape(entry.fingerprint) << "\"";
  for (const auto& [key, value] : entry.config) {
    out << ", \"config." << json_escape(key) << "\": \"" << json_escape(value)
        << "\"";
  }
  for (const auto& [key, value] : entry.metrics) {
    out << ", \"metric." << json_escape(key) << "\": " << format_double(value);
  }
  out << "}";
  return out.str();
}

BenchEntry decode_entry(const std::string& line) {
  BenchEntry entry;
  for (const auto& [key, value] : parse_flat_json(line)) {
    if (key == "sha") {
      entry.sha = value;
    } else if (key == "label") {
      entry.label = value;
    } else if (key == "fingerprint") {
      entry.fingerprint = value;
    } else if (key.rfind("config.", 0) == 0) {
      entry.config[key.substr(7)] = value;
    } else if (key.rfind("metric.", 0) == 0) {
      double v = 0.0;
      if (!parse_double(value, v)) fail("non-numeric metric " + key);
      entry.metrics[key.substr(7)] = v;
    } else {
      fail("unknown ledger field " + key);
    }
  }
  if (entry.fingerprint.empty()) fail("ledger line without fingerprint");
  return entry;
}

std::vector<BenchEntry> load_history(const std::string& path) {
  std::vector<BenchEntry> entries;
  std::ifstream in(path);
  if (!in) return entries;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (skip_ws(line, 0) >= line.size()) continue;  // blank
    try {
      entries.push_back(decode_entry(line));
    } catch (const std::exception& e) {
      fail(path + ":" + std::to_string(line_no) + ": " + e.what());
    }
  }
  return entries;
}

int metric_direction(const std::string& key) {
  static const char* kHigherBetter[] = {
      "periods_per_second", "matmul_gflops", "matmul_gflops_scalar",
      "matmul_gflops_avx2", "inference_steps_per_second_batched",
      "inference_steps_per_second_unbatched", "speedup",
      "inference_batched_speedup", "achieved_rate",
  };
  static const char* kLowerBetter[] = {
      "p99_coordinator_solve_seconds", "wall_seconds", "sequential_seconds",
      "parallel_seconds", "shed_rate", "p50_decision_seconds",
      "p99_decision_seconds", "p999_decision_seconds", "p50_server_seconds",
      "p99_server_seconds",
  };
  for (const char* k : kHigherBetter) {
    if (key == k) return 1;
  }
  for (const char* k : kLowerBetter) {
    if (key == k) return -1;
  }
  return 0;
}

DiffResult diff_entries(const BenchEntry& a, const BenchEntry& b, double tolerance) {
  DiffResult result;
  result.fingerprint_match = a.fingerprint == b.fingerprint;
  for (const auto& [key, va] : a.metrics) {
    const auto it = b.metrics.find(key);
    if (it == b.metrics.end()) continue;
    DiffRow row;
    row.key = key;
    row.a = va;
    row.b = it->second;
    row.delta_frac = va == 0.0 ? 0.0 : (row.b - row.a) / std::abs(va);
    row.direction = metric_direction(key);
    if (row.direction > 0) {
      row.regression = row.b < row.a * (1.0 - tolerance);
    } else if (row.direction < 0) {
      row.regression = row.b > row.a * (1.0 + tolerance);
    }
    result.regression = result.regression || row.regression;
    result.rows.push_back(row);
  }
  return result;
}

}  // namespace edgeslice::tools
