// Ablation — reward-shaping weight beta (Sec. VI-A sets beta = 20 "to have
// sufficient weight on enforcing the total orchestrated resources
// constraint"). Sweeps beta and reports the constraint violation and the
// system performance of the resulting policy: too-small beta lets the
// policy over-subscribe; large beta enforces feasibility at little cost.
#include "common.h"

#include "core/policies.h"

using namespace edgeslice;
using namespace edgeslice::bench;

int main(int argc, char** argv) {
  Setup defaults;
  defaults.train_steps = 8000;  // 4 trainings: keep the sweep quick
  Setup setup = parse_common_flags(argc, argv, defaults);
  Rng profile_rng(setup.seed);
  const auto profiles = make_profiles(setup.slices, profile_rng);
  const auto model = make_service_model(profiles);

  print_header("Ablation: reward-shaping weight beta", "the beta=20 design choice");
  print_series_header({"beta", "violation/step", "mean-perf/step"});

  for (double beta : {0.0, 5.0, 20.0, 50.0}) {
    Rng rng(setup.seed);
    // Train with the modified beta.
    auto config = env_config(setup, true);
    config.beta = beta;
    env::RaEnvironment train_env(config, profiles, model, make_perf(setup), rng.spawn());
    rl::DdpgConfig ddpg;
    ddpg.base.state_dim = train_env.state_dim();
    ddpg.base.action_dim = train_env.action_dim();
    ddpg.base.hidden = 64;
    ddpg.batch_size = 64;
    ddpg.warmup = 128;
    ddpg.noise_decay = 0.9996;
    ddpg.noise_min = 0.08;
    auto agent = std::make_shared<rl::Ddpg>(ddpg, rng);
    core::TrainingConfig training;
    training.steps = setup.train_steps;
    core::train_agent(*agent, train_env, training, rng);

    // Evaluate raw violation + performance on a fresh environment.
    env::RaEnvironment eval_env(config, profiles, model, make_perf(setup), Rng(999));
    core::LearnedPolicy policy(agent, false);
    double violation = 0.0;
    double perf = 0.0;
    const std::size_t intervals = setup.eval_periods * setup.intervals_per_period;
    for (std::size_t t = 0; t < intervals; ++t) {
      const auto action = policy.decide(eval_env);
      const auto result = eval_env.step(action);
      violation += result.constraint_violation;
      for (double u : result.performance) perf += u;
    }
    print_row({beta, violation / static_cast<double>(intervals),
               perf / static_cast<double>(intervals)});
  }
  return 0;
}
