#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "ckpt/agent_cache.h"
#include "common/metrics.h"
#include "common/trace_span.h"
#include "core/policies.h"
#include "ipc/supervisor.h"
#include "nn/gemm.h"
#include "obs/event_log.h"
#include "obs/telemetry_server.h"
#include "rl/frozen.h"
#include "rl/sac.h"

namespace edgeslice::bench {

std::vector<env::AppProfile> make_profiles(std::size_t slices, Rng& rng) {
  std::vector<env::AppProfile> profiles;
  profiles.reserve(slices);
  if (slices >= 1) profiles.push_back(env::slice1_profile());
  if (slices >= 2) profiles.push_back(env::slice2_profile());
  // Additional slices pick random (resolution, model) combinations, as the
  // simulated slices of Sec. VII-D do.
  const env::FrameResolution resolutions[] = {env::FrameResolution::R100x100,
                                              env::FrameResolution::R300x300,
                                              env::FrameResolution::R500x500};
  const env::YoloModel models[] = {env::YoloModel::Y320, env::YoloModel::Y416,
                                   env::YoloModel::Y608};
  while (profiles.size() < slices) {
    profiles.push_back(
        env::make_profile(resolutions[rng.index(3)], models[rng.index(3)]));
  }
  return profiles;
}

env::RaEnvironmentConfig env_config(const Setup& setup, bool traffic_in_state) {
  env::RaEnvironmentConfig config;
  config.slices = setup.slices;
  config.intervals_per_period = setup.intervals_per_period;
  config.arrival_rate = setup.arrival_rate;
  config.include_traffic_in_state = traffic_in_state;
  return config;
}

std::shared_ptr<const env::PerformanceFunction> make_perf(const Setup& setup) {
  if (setup.service_time_perf) return env::make_neg_service_time_perf();
  return env::make_queue_power_perf(setup.alpha);
}

std::shared_ptr<const env::ServiceModel> make_service_model(
    const std::vector<env::AppProfile>& profiles) {
  const env::DirectServiceModel ground_truth(env::prototype_capacity());
  return std::make_shared<env::PerProfileLinearServiceModel>(profiles, ground_truth, 0.1);
}

std::vector<std::unique_ptr<env::RaEnvironment>> make_environments(
    const Setup& setup, const std::vector<env::AppProfile>& profiles,
    std::shared_ptr<const env::ServiceModel> model, bool traffic_in_state,
    std::uint64_t seed_offset) {
  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  environments.reserve(setup.ras);
  const Rng base(setup.seed);
  for (std::size_t j = 0; j < setup.ras; ++j) {
    environments.push_back(std::make_unique<env::RaEnvironment>(
        env_config(setup, traffic_in_state), profiles, model, make_perf(setup),
        base.spawn(1000 + seed_offset * 100 + j)));
  }
  return environments;
}

void apply_trace_traffic(const Setup& setup,
                         std::vector<std::unique_ptr<env::RaEnvironment>>& environments,
                         Rng& rng) {
  trace::TraceConfig trace_config;
  trace_config.cells = environments.size();
  trace_config.days = 3;
  const trace::TraceDataset dataset(trace_config, rng);
  for (std::size_t j = 0; j < environments.size(); ++j) {
    const auto daily = dataset.normalized_daily_profile(j, setup.intervals_per_period,
                                                        setup.trace_peak_rate);
    std::vector<std::vector<double>> per_slice(environments[j]->slice_count());
    for (std::size_t i = 0; i < per_slice.size(); ++i) {
      // Shift each slice within the diurnal curve so slices peak at
      // different hours (spatio-temporal traffic diversity).
      per_slice[i].resize(daily.size());
      const std::size_t shift = i * daily.size() / (2 * per_slice.size());
      for (std::size_t t = 0; t < daily.size(); ++t) {
        per_slice[i][t] = daily[(t + shift) % daily.size()];
      }
    }
    environments[j]->set_arrival_profiles(std::move(per_slice));
  }
}

namespace {

/// Trained policies are cached on disk so that bench binaries sharing a
/// configuration do not retrain. Delete the cache directory (or set
/// EDGESLICE_AGENT_CACHE=off) to force retraining.
std::filesystem::path agent_cache_dir() {
  const char* base = std::getenv("EDGESLICE_AGENT_CACHE");
  if (base != nullptr && std::string(base) == "off") return {};
  return std::filesystem::path(base != nullptr ? base : "edgeslice_agent_cache");
}

/// Canonical configuration text addressing a cache entry: every knob that
/// changes the trained policy, one "key = value" line each. Stored inside
/// the entry and verified byte-for-byte on load, so two configurations can
/// never silently alias (FORMATS.md Sec. 3).
std::string agent_fingerprint(const Setup& setup, rl::Algorithm algorithm,
                              bool traffic_in_state) {
  const auto canonical = [](double v) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", v);
    return std::string(buffer);
  };
  std::ostringstream out;
  out << "artifact = agent\n";
  out << "algorithm = " << rl::algorithm_name(algorithm) << "\n";
  out << "slices = " << setup.slices << "\n";
  out << "intervals_per_period = " << setup.intervals_per_period << "\n";
  out << "arrival_rate = " << canonical(setup.arrival_rate) << "\n";
  out << "alpha = " << canonical(setup.alpha) << "\n";
  out << "performance = " << (setup.service_time_perf ? "st" : "qp") << "\n";
  out << "state = " << (traffic_in_state ? "full" : "nt") << "\n";
  out << "train_steps = " << setup.train_steps << "\n";
  out << "seed = " << setup.seed << "\n";
  return out.str();
}

/// Pre-content-addressed cache filename (name-mangled .mlp text files).
/// Still read as a fallback; hits are migrated to content-addressed
/// entries so the legacy file is consulted at most once per config.
std::filesystem::path legacy_cache_path_for(const Setup& setup, rl::Algorithm algorithm,
                                            bool traffic_in_state) {
  std::ostringstream name;
  name << rl::algorithm_name(algorithm) << "_s" << setup.slices << "_T"
       << setup.intervals_per_period << "_a" << setup.alpha << "_"
       << (setup.service_time_perf ? "st" : "qp") << "_"
       << (traffic_in_state ? "full" : "nt") << "_n" << setup.train_steps << "_seed"
       << setup.seed << ".mlp";
  return agent_cache_dir() / name.str();
}

/// Cache lookup: content-addressed entry first, then the legacy v0 name
/// (migrated forward on hit). Corrupt entries are reported and ignored —
/// the bench retrains rather than aborts.
std::optional<nn::Mlp> load_cached_policy(const Setup& setup, rl::Algorithm algorithm,
                                          bool traffic_in_state) {
  const auto dir = agent_cache_dir();
  if (dir.empty()) return std::nullopt;
  const std::string fingerprint = agent_fingerprint(setup, algorithm, traffic_in_state);
  try {
    if (auto policy = ckpt::load_policy(dir.string(), fingerprint)) {
      std::fprintf(stderr, "[bench] loading cached policy %s\n",
                   ckpt::cache_entry_path(dir.string(), fingerprint).c_str());
      return policy;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[bench] ignoring corrupt cache entry: %s\n", e.what());
  }
  const auto legacy = legacy_cache_path_for(setup, algorithm, traffic_in_state);
  if (std::filesystem::exists(legacy)) {
    try {
      std::ifstream in(legacy);
      nn::Mlp policy = nn::Mlp::load(in);
      std::fprintf(stderr, "[bench] migrating legacy cached policy %s\n",
                   legacy.c_str());
      ckpt::store_policy(dir.string(), fingerprint, policy);
      return policy;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[bench] ignoring unreadable legacy cache entry %s: %s\n",
                   legacy.c_str(), e.what());
    }
  }
  return std::nullopt;
}

}  // namespace

std::shared_ptr<rl::Agent> train_agent_for(const Setup& setup, rl::Algorithm algorithm,
                                           bool traffic_in_state, Rng& rng) {
  if (auto cached = load_cached_policy(setup, algorithm, traffic_in_state)) {
    return std::make_shared<rl::FrozenActor>(*cached, rl::algorithm_name(algorithm));
  }

  Rng profile_rng(setup.seed);
  const auto profiles = make_profiles(setup.slices, profile_rng);
  const auto model = make_service_model(profiles);
  env::RaEnvironment training_env(env_config(setup, traffic_in_state), profiles, model,
                                  make_perf(setup), rng.spawn());

  rl::AgentConfig base;
  base.state_dim = training_env.state_dim();
  base.action_dim = training_env.action_dim();
  base.hidden = 64;  // scaled from the paper's 128 (see EXPERIMENTS.md)
  std::shared_ptr<rl::Agent> agent;
  if (algorithm == rl::Algorithm::Ddpg) {
    // The paper's configuration, with the exploration floor raised for the
    // reduced step budget.
    rl::DdpgConfig config;
    config.base = base;
    config.batch_size = 64;
    config.warmup = 128;
    config.noise_decay = 0.9996;
    config.noise_min = 0.08;
    agent = std::make_shared<rl::Ddpg>(config, rng);
  } else if (algorithm == rl::Algorithm::Sac) {
    // Scale the paper-sized batch down with everything else.
    rl::SacConfig config;
    config.base = base;
    config.batch_size = 64;
    config.warmup = 128;
    agent = std::make_shared<rl::Sac>(config, rng);
  } else {
    agent = std::shared_ptr<rl::Agent>(rl::make_agent(algorithm, base, rng));
  }

  core::TrainingConfig training;
  training.steps = setup.train_steps;
  // Traffic is kept at the setup's fixed rate during training: the agent
  // learns load-adaptivity through the queue lengths in its state.
  // (Resampling the traffic level every episode alongside the coordination
  // values makes the learning problem so non-stationary that policies
  // collapse at CPU-scale step budgets; see DESIGN.md Sec. 5.)
  training.randomize_traffic = false;
  // Deploy the best validated snapshot, not the last iterate — guards
  // against late-training divergence at reduced step budgets.
  training.validation_every = std::max<std::size_t>(1000, setup.train_steps / 12);
  // Validate at the clamp boundary: a loaded system operates there.
  training.validation_coordination = -50.0;

  // --checkpoint-every / --checkpoint-out / --resume map straight onto the
  // training loop's mid-run checkpointing (DDPG only: the other agents do
  // not serialize their training state). --resume without --checkpoint-out
  // saves back to the resume path, so a crash-and-rerun loop needs one flag.
  // Benches that train several agents in one process (full + NT state)
  // would clobber a single user-supplied path — and the resumed run would
  // refuse the foreign fingerprint — so each training gets its own file,
  // "<path>.<fingerprint digest>".
  if (setup.checkpoint_every > 0 || !setup.resume_path.empty()) {
    if (algorithm == rl::Algorithm::Ddpg) {
      std::string ckpt_base = !setup.checkpoint_out.empty() ? setup.checkpoint_out
                                                            : setup.resume_path;
      if (ckpt_base.empty()) ckpt_base = "edgeslice_train.ckpt";
      training.checkpoint_every = setup.checkpoint_every;
      training.checkpoint_path =
          ckpt_base + "." +
          ckpt::fingerprint_digest(agent_fingerprint(setup, algorithm, traffic_in_state));
      training.resume = !setup.resume_path.empty();
      std::fprintf(stderr, "[bench] training checkpoints: %s\n",
                   training.checkpoint_path.c_str());
    } else {
      std::fprintf(stderr,
                   "[bench] checkpoint/resume flags ignored for %s (DDPG only)\n",
                   rl::algorithm_name(algorithm));
    }
  }

  // DDPG at reduced budgets is seed-sensitive (especially for the
  // queue-blind NT state): when the best validated snapshot is still
  // catastrophic (a slice starves and its queue saturates), retrain with a
  // fresh seed. A sane policy scores around -10^3 over the validation
  // window; a starving one is below -10^5.
  const double kAcceptableScore = -5e4;
  core::TrainingResult trained;
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::fprintf(stderr,
                 "[bench] training %s (%zu steps, slices=%zu, %s, attempt %d) ...\n",
                 rl::algorithm_name(algorithm), training.steps, setup.slices,
                 traffic_in_state ? "full state" : "NT state", attempt + 1);
    core::TrainingResult candidate = core::train_agent(*agent, training_env, training, rng);
    if (!trained.best_policy.has_value() ||
        (candidate.best_policy.has_value() &&
         candidate.best_validation_score > trained.best_validation_score)) {
      trained = std::move(candidate);
    }
    if (!trained.best_policy.has_value() ||
        trained.best_validation_score >= kAcceptableScore) {
      break;
    }
    // Retries start from fresh networks — resuming (or overwriting) the
    // first attempt's checkpoint would just replay the same bad trajectory.
    training.checkpoint_every = 0;
    training.checkpoint_path.clear();
    training.resume = false;
    // Fresh networks for the retry; the environment keeps its dynamics.
    if (algorithm == rl::Algorithm::Ddpg) {
      rl::DdpgConfig config;
      config.base = base;
      config.batch_size = 64;
      config.warmup = 128;
      config.noise_decay = 0.9996;
      config.noise_min = 0.08;
      agent = std::make_shared<rl::Ddpg>(config, rng);
    } else {
      break;  // retry logic is only tuned for the DDPG path
    }
  }

  std::shared_ptr<rl::Agent> deployed = agent;
  if (trained.best_policy.has_value()) {
    deployed = std::make_shared<rl::FrozenActor>(*trained.best_policy,
                                                 rl::algorithm_name(algorithm));
    std::fprintf(stderr, "[bench] deployed snapshot with validation score %.1f\n",
                 trained.best_validation_score);
  }
  const auto cache_dir = agent_cache_dir();
  if (!cache_dir.empty() && deployed->policy_network() != nullptr) {
    ckpt::store_policy(cache_dir.string(),
                       agent_fingerprint(setup, algorithm, traffic_in_state),
                       *deployed->policy_network());
  }
  return deployed;
}

std::vector<std::shared_ptr<rl::Agent>> train_agents_for(
    const std::vector<TrainingSpec>& specs, Rng& rng, ThreadPool* pool) {
  // Spawn every job's stream up front, in spec order, so the streams do
  // not depend on scheduling (and the sequential path consumes the master
  // Rng identically).
  std::vector<Rng> streams;
  streams.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) streams.push_back(rng.spawn());

  std::vector<std::shared_ptr<rl::Agent>> agents(specs.size());
  const auto run_job = [&](std::size_t i) {
    agents[i] = train_agent_for(specs[i].setup, specs[i].algorithm,
                                specs[i].traffic_in_state, streams[i]);
  };
  if (pool != nullptr && pool->thread_count() > 1 && specs.size() > 1) {
    pool->parallel_for(specs.size(), run_job);
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) run_job(i);
  }
  return agents;
}

const char* contender_name(Contender contender) {
  switch (contender) {
    case Contender::EdgeSlice: return "EdgeSlice";
    case Contender::EdgeSliceNt: return "EdgeSlice-NT";
    case Contender::Taro: return "TARO";
  }
  return "?";
}

RunResult run_contender(const Setup& setup, Contender contender, Rng& rng,
                        std::shared_ptr<rl::Agent> trained,
                        core::SystemMonitor* monitor_out) {
  const bool traffic_in_state = contender != Contender::EdgeSliceNt;
  Rng profile_rng(setup.seed);
  const auto profiles = make_profiles(setup.slices, profile_rng);
  const auto model = make_service_model(profiles);
  auto environments = make_environments(setup, profiles, model, traffic_in_state);
  if (setup.trace_driven) {
    Rng trace_rng(setup.seed + 77);
    apply_trace_traffic(setup, environments, trace_rng);
  }

  std::vector<std::unique_ptr<core::RaPolicy>> policies;
  std::shared_ptr<rl::Agent> agent = trained;
  if (contender == Contender::Taro) {
    for (std::size_t j = 0; j < setup.ras; ++j) {
      policies.push_back(std::make_unique<core::TaroPolicy>());
    }
  } else {
    if (!agent) agent = train_agent_for(setup, rl::Algorithm::Ddpg, traffic_in_state, rng);
    for (std::size_t j = 0; j < setup.ras; ++j) {
      policies.push_back(std::make_unique<core::LearnedPolicy>(agent, /*learn=*/false));
    }
  }

  core::CoordinatorConfig coordinator;
  coordinator.slices = setup.slices;
  coordinator.ras = setup.ras;
  core::SystemConfig system_config;
  system_config.use_coordinator = contender != Contender::Taro;
  // Deployment policies (frozen actors, TARO) share no mutable state, so
  // the period loop may fan out across the setup's pool; results are
  // bit-identical to a sequential run.
  system_config.pool = setup.pool;

  std::vector<env::RaEnvironment*> env_ptrs;
  std::vector<core::RaPolicy*> policy_ptrs;
  for (auto& e : environments) env_ptrs.push_back(e.get());
  for (auto& p : policies) policy_ptrs.push_back(p.get());

  // --workers: fork the RAs into supervised worker processes and drive
  // them over the wire instead of stepping them here. Trajectories are
  // bit-identical to the in-process run at any worker count, so this is a
  // deployment-shape knob, not a results knob. The supervisor supersedes
  // the thread pool for the period loop.
  std::unique_ptr<ipc::WorkerSupervisor> supervisor;
  if (setup.workers > 0) {
    ipc::SupervisorConfig sup_config;
    sup_config.workers = setup.workers;
    sup_config.telemetry_every = setup.telemetry_interval;
    supervisor = std::make_unique<ipc::WorkerSupervisor>(env_ptrs, policy_ptrs,
                                                         sup_config);
    supervisor->start();
    system_config.transport = supervisor.get();
    system_config.pool = nullptr;
    std::fprintf(stderr, "[bench] %zu RAs across %zu worker processes\n",
                 setup.ras, supervisor->worker_count());
  }
  core::EdgeSliceSystem system(env_ptrs, policy_ptrs, coordinator, system_config);

  RunResult result;
  for (const auto& period : system.run(setup.eval_periods)) {
    result.total_performance += period.system_performance;
  }
  result.per_ra_performance = result.total_performance /
                              static_cast<double>(setup.ras * setup.eval_periods);
  result.per_slice_performance = result.total_performance /
                                 static_cast<double>(setup.slices * setup.eval_periods);
  result.system_series = system.monitor().system_performance_series();
  result.slice_series = system.monitor().slice_performance_series();
  if (monitor_out != nullptr) *monitor_out = system.monitor();
  return result;
}

namespace {

/// Destination of the end-of-run observability dump; empty disables it.
std::string g_metrics_out_path;

/// Destination of the end-of-run flight-recorder JSONL dump; empty
/// disables it. The same path doubles as the crash-dump destination.
std::string g_events_out_path;

/// Live exposition, enabled by --telemetry-port / --metrics-interval.
std::unique_ptr<obs::TelemetryServer> g_telemetry_server;
std::unique_ptr<obs::RollingSnapshotWriter> g_snapshot_writer;

/// Registered with atexit by parse_common_flags so every bench binary
/// exports its metrics without touching each main(): one JSON document
/// combining the registry (counters/gauges/histograms), the tracer
/// (per-span, per-period timings) and the flight-recorder window.
/// Written via <path>.tmp + rename, so an exit racing a reader (or a
/// crash inside the dump itself) never leaves a truncated file.
void dump_metrics_at_exit() {
  if (g_metrics_out_path.empty()) return;
  if (!obs::write_observability_snapshot(g_metrics_out_path)) {
    std::fprintf(stderr, "[bench] cannot write metrics to %s\n",
                 g_metrics_out_path.c_str());
    return;
  }
  std::fprintf(stderr, "[bench] wrote metrics to %s\n", g_metrics_out_path.c_str());
}

/// End-of-run flight-recorder dump (also via tmp + rename). On a crash
/// the signal/terminate handlers installed by set_crash_dump_path write
/// the same path directly instead.
void dump_events_at_exit() {
  if (g_events_out_path.empty()) return;
  const std::string tmp = g_events_out_path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) {
      std::fprintf(stderr, "[bench] cannot write events to %s\n", tmp.c_str());
      return;
    }
    obs::global_event_log().write_jsonl(out);
  }
  std::rename(tmp.c_str(), g_events_out_path.c_str());
  std::fprintf(stderr, "[bench] wrote events to %s\n", g_events_out_path.c_str());
}

/// Stop the live exposition threads before the registries they read are
/// torn down. Registered with atexit AFTER the singletons are touched, so
/// it runs before their destructors.
void stop_telemetry_at_exit() {
  if (g_snapshot_writer) g_snapshot_writer->stop();
  if (g_telemetry_server) g_telemetry_server->stop();
}

}  // namespace

Setup parse_common_flags(int argc, char** argv, Setup setup,
                         const std::vector<std::string>& extra_flags) {
  std::vector<std::string> known{"steps",       "seed",           "periods",
                                 "threads",     "metrics-out",    "telemetry-port",
                                 "metrics-interval", "events-out", "checkpoint-every",
                                 "checkpoint-out",   "resume",     "checkpoint-keep",
                                 "workers",     "gemm",       "telemetry-interval"};
  known.insert(known.end(), extra_flags.begin(), extra_flags.end());
  const CliArgs args(argc, argv, known);

  // --gemm scalar|avx2|auto (EDGESLICE_GEMM): pin the nn GEMM backend for
  // the whole run. Without the flag the backend resolves lazily from the
  // environment on first use; pinning here surfaces a bad value as a
  // clean CLI error instead of a mid-run throw. An explicit "avx2" on a
  // CPU without AVX2+FMA throws rather than silently falling back.
  const char* env_gemm = std::getenv("EDGESLICE_GEMM");
  const std::string gemm = args.get("gemm", env_gemm != nullptr ? env_gemm : "");
  if (!gemm.empty()) nn::set_gemm_backend(gemm.c_str());
  setup.train_steps = static_cast<std::size_t>(args.get_int_env(
      "steps", "EDGESLICE_TRAIN_STEPS", static_cast<std::int64_t>(setup.train_steps)));
  setup.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(setup.seed)));
  setup.eval_periods = static_cast<std::size_t>(
      args.get_int("periods", static_cast<std::int64_t>(setup.eval_periods)));
  setup.threads = static_cast<std::size_t>(args.get_int_env(
      "threads", "EDGESLICE_THREADS", static_cast<std::int64_t>(setup.threads)));
  setup.checkpoint_every = static_cast<std::size_t>(args.get_int(
      "checkpoint-every", static_cast<std::int64_t>(setup.checkpoint_every)));
  setup.checkpoint_out = args.get("checkpoint-out", setup.checkpoint_out);
  setup.resume_path = args.get("resume", setup.resume_path);
  setup.checkpoint_keep = static_cast<std::size_t>(args.get_int(
      "checkpoint-keep", static_cast<std::int64_t>(setup.checkpoint_keep)));
  setup.workers = static_cast<std::size_t>(args.get_int_env(
      "workers", "EDGESLICE_WORKERS", static_cast<std::int64_t>(setup.workers)));
  setup.telemetry_interval = static_cast<std::size_t>(args.get_int_env(
      "telemetry-interval", "EDGESLICE_TELEMETRY_INTERVAL",
      static_cast<std::int64_t>(setup.telemetry_interval)));

  // --metrics-out <path> (or EDGESLICE_METRICS_OUT) dumps the metrics
  // registry + span timings as JSON when the binary exits.
  const char* env_path = std::getenv("EDGESLICE_METRICS_OUT");
  const std::string metrics_out =
      args.get("metrics-out", env_path != nullptr ? env_path : "");
  if (!metrics_out.empty() && g_metrics_out_path.empty()) {
    g_metrics_out_path = metrics_out;
    // Touch the singletons before registering the handler: function-local
    // statics are destroyed in reverse construction order, so constructing
    // them first guarantees they outlive the atexit dump.
    global_metrics();
    global_tracer();
    obs::global_event_log();
    std::atexit(dump_metrics_at_exit);
  }

  // --events-out <path> (or EDGESLICE_EVENTS_OUT) dumps the flight
  // recorder as JSONL at exit, and — via the crash handlers — on
  // std::terminate or a fatal signal.
  const char* env_events = std::getenv("EDGESLICE_EVENTS_OUT");
  const std::string events_out =
      args.get("events-out", env_events != nullptr ? env_events : "");
  if (!events_out.empty() && g_events_out_path.empty()) {
    g_events_out_path = events_out;
    obs::global_event_log();
    obs::set_crash_dump_path(events_out);
    std::atexit(dump_events_at_exit);
  }

  // --telemetry-port <port> (or EDGESLICE_TELEMETRY_PORT) serves live
  // /metrics, /events.json, /spans.json and /healthz on localhost while
  // the bench runs; port 0 picks an ephemeral one (printed to stderr).
  const std::int64_t telemetry_port =
      args.get_int_env("telemetry-port", "EDGESLICE_TELEMETRY_PORT", -1);
  if (telemetry_port >= 0 && !g_telemetry_server) {
    global_metrics();
    global_tracer();
    obs::global_event_log();
    obs::TelemetryServerConfig server_config;
    server_config.port = static_cast<std::uint16_t>(telemetry_port);
    g_telemetry_server = std::make_unique<obs::TelemetryServer>(server_config);
    if (g_telemetry_server->start()) {
      std::fprintf(stderr, "[bench] telemetry on http://127.0.0.1:%u/metrics\n",
                   static_cast<unsigned>(g_telemetry_server->port()));
    }
    std::atexit(stop_telemetry_at_exit);
  }

  // --metrics-interval <periods> rewrites the observability snapshot
  // (atomically) every N orchestration periods during the run, not only
  // at exit; uses --metrics-out's path or edgeslice_metrics.json.
  const std::int64_t metrics_interval = args.get_int("metrics-interval", 0);
  if (metrics_interval > 0 && !g_snapshot_writer) {
    if (g_metrics_out_path.empty()) g_metrics_out_path = "edgeslice_metrics.json";
    global_metrics();
    global_tracer();
    obs::global_event_log();
    g_snapshot_writer = std::make_unique<obs::RollingSnapshotWriter>(
        g_metrics_out_path, static_cast<std::uint64_t>(metrics_interval));
    if (!g_telemetry_server) std::atexit(stop_telemetry_at_exit);
  }
  return setup;
}

void print_header(const std::string& title, const std::string& figure) {
  std::printf("# %s\n", title.c_str());
  std::printf("# Reproduces %s of EdgeSlice (ICDCS 2020). Values are shaped,\n",
              figure.c_str());
  std::printf("# not absolute, reproductions (see EXPERIMENTS.md).\n");
}

void print_series_header(const std::vector<std::string>& columns) {
  std::printf("#");
  for (const auto& c : columns) std::printf(" %14s", c.c_str());
  std::printf("\n");
}

void print_row(const std::vector<double>& values) {
  std::printf(" ");
  for (double v : values) std::printf(" %14.3f", v);
  std::printf("\n");
}

}  // namespace edgeslice::bench
