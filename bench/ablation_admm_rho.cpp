// Ablation — ADMM penalty rho (Sec. VII uses rho = 1.0 citing Hong & Luo's
// linear-convergence analysis). Sweeps rho and reports the coordinator's
// primal/dual residual trajectory against scripted (non-learning) agents,
// isolating the optimization dynamics from RL noise.
#include "common.h"

#include "core/policies.h"

using namespace edgeslice;
using namespace edgeslice::bench;

int main(int argc, char** argv) {
  Setup setup = parse_common_flags(argc, argv, Setup{});
  print_header("Ablation: ADMM penalty rho", "the rho=1.0 design choice");

  for (double rho : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    Rng profile_rng(setup.seed);
    const auto profiles = make_profiles(setup.slices, profile_rng);
    const auto model = make_service_model(profiles);
    auto config = env_config(setup, true);
    config.rho = rho;
    std::vector<std::unique_ptr<env::RaEnvironment>> environments;
    std::vector<std::unique_ptr<core::RaPolicy>> policies;
    for (std::size_t j = 0; j < setup.ras; ++j) {
      environments.push_back(std::make_unique<env::RaEnvironment>(
          config, profiles, model, make_perf(setup), Rng(100 + j)));
      policies.push_back(std::make_unique<core::EqualSharePolicy>());
    }
    core::CoordinatorConfig coordinator;
    coordinator.slices = setup.slices;
    coordinator.ras = setup.ras;
    coordinator.rho = rho;
    std::vector<env::RaEnvironment*> env_ptrs;
    std::vector<core::RaPolicy*> policy_ptrs;
    for (auto& e : environments) env_ptrs.push_back(e.get());
    for (auto& p : policies) policy_ptrs.push_back(p.get());
    core::EdgeSliceSystem system(env_ptrs, policy_ptrs, coordinator);
    system.run(10);

    const auto& history = system.coordinator().monitor().history();
    std::printf("\n# rho = %.1f (converged=%s after %zu iterations)\n", rho,
                system.coordinator().converged() ? "yes" : "no",
                system.coordinator().iterations());
    print_series_header({"iteration", "primal-residual", "dual-residual"});
    for (std::size_t i = 0; i < history.size(); ++i) {
      print_row({static_cast<double>(i + 1), history[i].primal, history[i].dual});
    }
  }
  return 0;
}
