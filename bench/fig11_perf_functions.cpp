// Fig. 11 — Compatibility with different performance functions
// (trace-driven simulation).
//
// (a) System performance vs the exponent alpha of U = -(l)^alpha, for
//     alpha in {1.0, 1.5, 2.0, 2.5}. The paper: EdgeSlice best everywhere;
//     TARO collapses at large alpha.
// (b) CDF of normalized system performance under U = -service_time, a
//     function deliberately independent of queue state. The paper:
//     EdgeSlice and EdgeSlice-NT nearly identical (queue observation adds
//     nothing here), both far better than TARO.
#include "common.h"

using namespace edgeslice;
using namespace edgeslice::bench;

int main(int argc, char** argv) {
  Setup base = parse_common_flags(argc, argv, simulation_setup());
  Rng rng(base.seed);

  print_header("Fig. 11: performance-function compatibility", "Fig. 11");

  // ---- (a): alpha sweep ----------------------------------------------------
  std::printf("\n# Fig. 11(a): system performance vs alpha\n");
  print_series_header({"alpha", "EdgeSlice", "EdgeSlice-NT", "TARO"});
  for (double alpha : {1.0, 1.5, 2.0, 2.5}) {
    Setup setup = base;
    setup.alpha = alpha;
    const auto es_agent = train_agent_for(setup, rl::Algorithm::Ddpg, true, rng);
    const auto nt_agent = train_agent_for(setup, rl::Algorithm::Ddpg, false, rng);
    const auto es = run_contender(setup, Contender::EdgeSlice, rng, es_agent);
    const auto nt = run_contender(setup, Contender::EdgeSliceNt, rng, nt_agent);
    const auto taro = run_contender(setup, Contender::Taro, rng);
    print_row({alpha, es.total_performance, nt.total_performance,
               taro.total_performance});
  }

  // ---- (b): service-time performance function ------------------------------
  std::printf("\n# Fig. 11(b): CDF of per-interval system performance under "
              "U = -service_time\n");
  Setup setup = base;
  setup.service_time_perf = true;
  const auto es_agent = train_agent_for(setup, rl::Algorithm::Ddpg, true, rng);
  const auto nt_agent = train_agent_for(setup, rl::Algorithm::Ddpg, false, rng);
  const auto es = run_contender(setup, Contender::EdgeSlice, rng, es_agent);
  const auto nt = run_contender(setup, Contender::EdgeSliceNt, rng, nt_agent);
  const auto taro = run_contender(setup, Contender::Taro, rng);

  // Normalize each series by the worst observation across contenders so the
  // CDF axis matches the paper's normalized presentation.
  double worst = -1e-9;
  for (const auto* series : {&es.system_series, &nt.system_series, &taro.system_series}) {
    for (double v : *series) worst = std::min(worst, v);
  }
  const auto normalize = [&](std::vector<double> xs) {
    for (auto& v : xs) v = v / std::abs(worst) * 14.0;  // paper axis ~[-14, 0]
    return xs;
  };
  const auto es_norm = normalize(es.system_series);
  const auto nt_norm = normalize(nt.system_series);
  const auto taro_norm = normalize(taro.system_series);
  print_series_header({"norm-perf", "EdgeSlice", "EdgeSlice-NT", "TARO"});
  for (double threshold : {-14.0, -12.0, -10.0, -8.0, -6.0, -4.0, -2.0, -1.0, -0.5,
                           -0.1, 0.0}) {
    print_row({threshold, ecdf_at(es_norm, threshold), ecdf_at(nt_norm, threshold),
               ecdf_at(taro_norm, threshold)});
  }
  std::printf("# mean per-interval system performance: EdgeSlice=%.3f "
              "EdgeSlice-NT=%.3f TARO=%.3f\n",
              mean(es.system_series), mean(nt.system_series), mean(taro.system_series));
  return 0;
}
