// Microbenchmarks of the substrates (google-benchmark).
//
// These quantify the per-operation costs that bound the control loop:
// a DDPG inference/update, a coordinator ADMM iteration, a MAC-scheduler
// TTI, an SDN reconfiguration, a GPU simulation tick, and a local
// linear-model prediction.
#include <benchmark/benchmark.h>

#include "common.h"
#include "core/coordinator.h"
#include "radio/scheduler.h"
#include "transport/transport_manager.h"

using namespace edgeslice;

namespace {

void BM_MatrixMatmul128(benchmark::State& state) {
  Rng rng(1);
  nn::Matrix a(64, 128);
  nn::Matrix b(128, 128);
  for (auto& v : a.data()) v = rng.normal();
  for (auto& v : b.data()) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.matmul(b));
  }
  // 2mnk FLOPs per product; the rate counter reports sustained FLOP/s.
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * 64 * 128 * 128 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MatrixMatmul128);

void BM_MatrixMatmul256(benchmark::State& state) {
  Rng rng(1);
  nn::Matrix a(256, 256);
  nn::Matrix b(256, 256);
  for (auto& v : a.data()) v = rng.normal();
  for (auto& v : b.data()) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.matmul(b));
  }
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * 256 * 256 * 256 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MatrixMatmul256);

void BM_DdpgInference(benchmark::State& state) {
  Rng rng(1);
  rl::DdpgConfig config;
  config.base.state_dim = 4;
  config.base.action_dim = 6;
  config.base.hidden = 128;  // the paper's width
  rl::Ddpg agent(config, rng);
  const std::vector<double> s{0.1, 0.2, -0.5, 0.3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.act(s, false));
  }
}
BENCHMARK(BM_DdpgInference);

void BM_DdpgTrainStep(benchmark::State& state) {
  Rng rng(1);
  rl::DdpgConfig config;
  config.base.state_dim = 4;
  config.base.action_dim = 6;
  config.base.hidden = 128;
  config.batch_size = 512;  // the paper's batch size
  config.warmup = 1;
  rl::Ddpg agent(config, rng);
  Rng data(2);
  // Pre-fill some replay and then time observe() (1 train step each).
  for (int i = 0; i < 64; ++i) {
    agent.observe(data.normals(4), data.uniforms(6), data.normal(), data.normals(4),
                  false);
  }
  for (auto _ : state) {
    agent.observe(data.normals(4), data.uniforms(6), data.normal(), data.normals(4),
                  false);
  }
}
BENCHMARK(BM_DdpgTrainStep);

void BM_CoordinatorUpdate(benchmark::State& state) {
  const auto slices = static_cast<std::size_t>(state.range(0));
  const auto ras = static_cast<std::size_t>(state.range(1));
  core::CoordinatorConfig config;
  config.slices = slices;
  config.ras = ras;
  core::PerformanceCoordinator coordinator(config);
  nn::Matrix u(slices, ras, -10.0);
  for (auto _ : state) {
    coordinator.update(u);
  }
}
BENCHMARK(BM_CoordinatorUpdate)->Args({2, 2})->Args({5, 10})->Args({20, 100});

void BM_MacSchedulerTti(benchmark::State& state) {
  radio::SliceAwareScheduler scheduler(25, {13, 12});
  std::vector<radio::UserDemand> users;
  for (std::size_t u = 0; u < 8; ++u) {
    users.push_back(radio::UserDemand{u, u % 2, 9, 1e5});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(users));
  }
}
BENCHMARK(BM_MacSchedulerTti);

void BM_TransportReconfig(benchmark::State& state) {
  transport::TransportManagerConfig config;
  transport::TransportManager manager(config);
  double share = 0.2;
  for (auto _ : state) {
    share = share >= 0.8 ? 0.2 : share + 0.1;
    benchmark::DoNotOptimize(manager.set_slice_share(0, share));
  }
}
BENCHMARK(BM_TransportReconfig);

void BM_GpuTick(benchmark::State& state) {
  compute::GpuConfig config;
  config.total_threads = 51200;
  compute::Gpu gpu(config);
  const auto a = gpu.register_app();
  const auto b = gpu.register_app();
  for (auto _ : state) {
    state.PauseTiming();
    if (gpu.idle(a)) gpu.submit(a, compute::Kernel{30000, 1e9});
    if (gpu.idle(b)) gpu.submit(b, compute::Kernel{30000, 1e9});
    state.ResumeTiming();
    benchmark::DoNotOptimize(gpu.run(1e-3, 1e-3));
  }
}
BENCHMARK(BM_GpuTick);

void BM_LinearModelPrediction(benchmark::State& state) {
  const env::DirectServiceModel truth(env::prototype_capacity());
  const auto grid = std::make_shared<env::GridDataset>(env::slice1_profile(), truth, 0.1);
  const env::LocalLinearServiceModel model(grid);
  Rng rng(1);
  for (auto _ : state) {
    const env::Allocation a{rng.uniform(), rng.uniform(), rng.uniform()};
    benchmark::DoNotOptimize(model.service_time(env::slice1_profile(), a));
  }
}
BENCHMARK(BM_LinearModelPrediction);

void BM_EnvironmentStep(benchmark::State& state) {
  const auto model = std::make_shared<env::DirectServiceModel>(env::prototype_capacity());
  env::RaEnvironment environment({}, {env::slice1_profile(), env::slice2_profile()},
                                 model, env::make_queue_power_perf(), Rng(1));
  const std::vector<double> action(6, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(environment.step(action));
  }
}
BENCHMARK(BM_EnvironmentStep);

}  // namespace

BENCHMARK_MAIN();
