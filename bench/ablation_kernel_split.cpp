// Ablation — kernel-split isolation (Sec. V-C).
//
// Demonstrates the design point behind the computing manager: under vanilla
// MPS a greedy tenant's kernels occupy the whole GPU and starve its
// neighbour; with kernel-split the quota holds exactly. Also reports the
// split overhead (number of kernel launches) per quota granularity.
#include "common.h"

#include "compute/computing_manager.h"
#include "compute/kernel_split.h"

using namespace edgeslice;
using namespace edgeslice::bench;

int main(int argc, char** argv) {
  parse_common_flags(argc, argv, Setup{});
  print_header("Ablation: GPU kernel-split isolation",
               "the Sec. V-C kernel-split design");

  // Two tenants: tenant 0 greedy (full-GPU kernels), tenant 1 entitled to 70%.
  print_series_header({"tenant0-quota", "t0-work-share", "t1-work-share", "launches"});
  for (double quota : {0.0, 0.1, 0.3, 0.5}) {
    compute::ComputingManagerConfig config;
    config.gpu.total_threads = 10000;
    config.slices = 2;
    compute::ComputingManager manager(config);
    manager.set_slice_share(0, quota);
    manager.set_slice_share(1, 0.7);
    // Enough queued work that the 1-second window is fully contended:
    // completion shares then reflect thread occupancy, not queue depletion.
    std::size_t launches = 0;
    for (int k = 0; k < 10; ++k) {
      if (quota > 0.0) {
        launches += compute::split_kernel(compute::Kernel{10000, 2000.0},
                                          manager.slice_threads(0))
                        .size();
      }
      manager.submit(0, compute::Kernel{10000, 2000.0});
      manager.submit(1, compute::Kernel{7000, 1400.0});
    }
    const auto done = manager.run(1.0, 1e-3);
    const double total = done[0] + done[1];
    print_row({quota, total > 0 ? done[0] / total : 0.0,
               total > 0 ? done[1] / total : 0.0, static_cast<double>(launches)});
  }

  // The vanilla-MPS contrast: no caps at all.
  compute::GpuConfig gpu_config;
  gpu_config.total_threads = 10000;
  compute::Gpu gpu(gpu_config);
  const auto greedy = gpu.register_app();
  const auto victim = gpu.register_app();
  for (int k = 0; k < 10; ++k) {
    gpu.submit(greedy, compute::Kernel{10000, 2000.0});
    gpu.submit(victim, compute::Kernel{7000, 1400.0});
  }
  const auto done = gpu.run(1.0, 1e-3);
  std::printf("\n# vanilla MPS (no caps): greedy=%.0f victim=%.0f work units —\n"
              "# the victim is starved; resource usage cannot be controlled.\n",
              done.at(greedy), done.at(victim));
  return 0;
}
