// Shared scaffolding for the figure-regeneration benches.
//
// Every bench binary reproduces one figure of the paper's evaluation
// (Sec. VII). The agents are trained at a reduced step count appropriate
// for a single-core CPU box (the paper trains 1e6 steps per agent on a
// GPU); override with --steps or EDGESLICE_TRAIN_STEPS. Shapes — which
// algorithm wins, by roughly what factor, where crossovers fall — are the
// reproduction target, not absolute values (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/system.h"
#include "core/training.h"
#include "env/service_model.h"
#include "rl/agent.h"
#include "rl/ddpg.h"
#include "trace/trace.h"

namespace edgeslice::bench {

/// Experiment-wide knobs, defaulting to the prototype setup (Sec. VII-C):
/// 2 slices, 2 RAs, t = 1 s, T = 10, Poisson arrivals at rate 10.
struct Setup {
  std::size_t slices = 2;
  std::size_t ras = 2;
  std::size_t intervals_per_period = 10;
  double arrival_rate = 10.0;
  double alpha = 2.0;                 // performance-function exponent
  bool service_time_perf = false;     // Fig. 11(b)'s alternative function
  bool trace_driven = false;          // Fig. 9-11: Trentino-style diurnal traffic
  double trace_peak_rate = 14.0;      // peak Poisson rate the trace maps to
  std::uint64_t seed = 1;
  std::size_t train_steps = 12000;    // scaled stand-in for the paper's 1e6
  std::size_t eval_periods = 10;
  /// Worker budget for train_agents_for and run_contender (--threads).
  /// Results are bit-identical at any thread count (see DESIGN.md Sec. 7).
  std::size_t threads = 1;
  /// Non-owning pool the bench main() constructs from `threads`; null runs
  /// everything sequentially.
  ThreadPool* pool = nullptr;
  /// Worker processes for the evaluation runs (--workers). 0 keeps every
  /// RA in this process; N > 0 forks N supervised workers and drives them
  /// over the ESFR wire protocol. Results are bit-identical at any worker
  /// count (see DESIGN.md "Process model & supervision"); when set, the
  /// evaluation ignores `pool` (the transport supersedes it).
  std::size_t workers = 0;
  /// Worker->supervisor telemetry shipping cadence in periods
  /// (--telemetry-interval). 1 ships a snapshot + drained events every
  /// period; N > 1 coarsens the cadence; 0 disables shipping entirely.
  /// Telemetry is observation only and never touches the deterministic
  /// path — digests are bit-identical at any cadence (DESIGN.md
  /// "Fleet telemetry").
  std::size_t telemetry_interval = 1;
  /// Mid-run checkpointing (--checkpoint-every / --checkpoint-out /
  /// --resume). For training benches the cadence is in steps; for the
  /// fault-tolerance ablation it is in periods. Empty/0 disables.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_out;
  std::string resume_path;
  /// Keep-last-N rotation for period-cadence checkpoints
  /// (--checkpoint-keep). 0 rewrites one file in place (historic
  /// behaviour); N >= 1 writes "<out>.p<period>" per boundary and prunes
  /// older siblings only after the new file is durably published, so a
  /// crash never leaves zero valid checkpoints (see src/ckpt/rotation.h).
  std::size_t checkpoint_keep = 0;
};

/// The simulation setup of Sec. VII-D: 5 slices, 10 RAs, 24-interval
/// periods, trace-driven traffic.
inline Setup simulation_setup() {
  Setup s;
  s.slices = 5;
  s.ras = 10;
  s.intervals_per_period = 24;
  s.trace_driven = true;
  // With five slices sharing one RA the per-slice load must be lower than
  // the two-slice prototype's for the system to be schedulable at all:
  // at 6 tasks/interval/slice the aggregate demand is ~60% of the dominant
  // resource, and the diurnal peak (phase-shifted across slices) pushes
  // the busiest hours toward ~85% — the regime where orchestration
  // quality separates the contenders without making every policy collapse.
  s.arrival_rate = 6.0;
  s.trace_peak_rate = 9.0;
  // Larger state/action spaces cost more per training step; the default
  // budget is reduced to keep the full figure suite under an hour on one
  // core. Raise with --steps for closer-to-paper results.
  s.train_steps = 6000;
  return s;
}

/// Application profiles: the two archetypes for the prototype experiments;
/// random (resolution, model) picks for larger simulations, as in Sec. VII-D.
std::vector<env::AppProfile> make_profiles(std::size_t slices, Rng& rng);

/// The shared environment configuration for a setup.
env::RaEnvironmentConfig env_config(const Setup& setup, bool traffic_in_state);

/// One performance function instance per call (they are stateless).
std::shared_ptr<const env::PerformanceFunction> make_perf(const Setup& setup);

/// The Sec. VI-B service model: per-profile grid datasets + local linear
/// regression, grounded in the prototype substrate capacities.
std::shared_ptr<const env::ServiceModel> make_service_model(
    const std::vector<env::AppProfile>& profiles);

/// Per-RA environments (seeded deterministically from setup.seed).
std::vector<std::unique_ptr<env::RaEnvironment>> make_environments(
    const Setup& setup, const std::vector<env::AppProfile>& profiles,
    std::shared_ptr<const env::ServiceModel> model, bool traffic_in_state,
    std::uint64_t seed_offset = 0);

/// Attach trace-driven arrival profiles to each RA (one trace cell per RA,
/// slices shifted within the cell's diurnal curve).
void apply_trace_traffic(const Setup& setup,
                         std::vector<std::unique_ptr<env::RaEnvironment>>& environments,
                         Rng& rng);

/// Train one agent of `algorithm` for the setup (offline, per Sec. VI-A/B).
/// The same trained agent is deployed to every RA of the evaluation system
/// (the RAs are statistically identical, so per-RA training would converge
/// to the same policy; sharing keeps single-core bench time sane).
std::shared_ptr<rl::Agent> train_agent_for(const Setup& setup, rl::Algorithm algorithm,
                                           bool traffic_in_state, Rng& rng);

/// One offline training request for train_agents_for.
struct TrainingSpec {
  Setup setup;
  rl::Algorithm algorithm = rl::Algorithm::Ddpg;
  bool traffic_in_state = true;
};

/// Train every spec — concurrently when `pool` has workers, sequentially
/// otherwise — and return the deployed agents indexed like `specs`. One
/// Rng stream is spawned from `rng` per spec, in spec order, before any
/// training starts, so the returned agents are bit-identical at any
/// thread count. Specs in one batch must not share a policy-cache path
/// (i.e. no two identical (setup, algorithm, state) triples).
std::vector<std::shared_ptr<rl::Agent>> train_agents_for(
    const std::vector<TrainingSpec>& specs, Rng& rng, ThreadPool* pool = nullptr);

/// Results of an evaluated system run.
struct RunResult {
  double total_performance = 0.0;              // sum U over everything
  double per_ra_performance = 0.0;             // total / ras / periods
  double per_slice_performance = 0.0;          // total / slices / periods
  std::vector<double> system_series;           // per interval, summed over RAs
  std::vector<std::vector<double>> slice_series;  // [slice][interval]
};

enum class Contender { EdgeSlice, EdgeSliceNt, Taro };
const char* contender_name(Contender contender);

/// Build policies + run the full Alg. 1 system for one contender.
/// For the learned contenders an agent is trained first (or supplied).
RunResult run_contender(const Setup& setup, Contender contender, Rng& rng,
                        std::shared_ptr<rl::Agent> trained = nullptr,
                        core::SystemMonitor* monitor_out = nullptr);

/// Parse the standard bench flags (--steps, --seed, --periods, --threads,
/// --metrics-out, --telemetry-port, --metrics-interval, --events-out)
/// into `setup`. All telemetry is observation only — results are
/// unchanged by it:
///   --metrics-out <path>      (EDGESLICE_METRICS_OUT) exit hook writing
///       metrics + spans + events as one JSON document, atomically
///       (<path>.tmp then rename).
///   --telemetry-port <port>   (EDGESLICE_TELEMETRY_PORT) localhost HTTP
///       server with /metrics (Prometheus), /events.json, /spans.json,
///       /healthz; port 0 picks an ephemeral port (printed to stderr).
///   --metrics-interval <n>    rewrite the --metrics-out snapshot every n
///       orchestration periods during the run, atomically.
///   --events-out <path>       (EDGESLICE_EVENTS_OUT) flight-recorder
///       JSONL at exit, and on std::terminate / fatal signals via the
///       crash handlers.
///   --checkpoint-every <n>    write an ESCK checkpoint of the complete
///       training state every n steps (periods for the fault-tolerance
///       ablation). Observation-only: results are unchanged.
///   --checkpoint-out <path>   checkpoint destination (default
///       edgeslice_train.ckpt, or the --resume path when given).
///   --resume <path>           resume from a checkpoint before the first
///       step; a missing file starts fresh, so crash-and-rerun loops need
///       no existence check. The remaining steps are bit-identical to an
///       uninterrupted run (see FORMATS.md / DESIGN.md Sec. 9).
///   --checkpoint-keep <n>     rotate period-cadence checkpoints instead
///       of rewriting one file: each boundary writes "<out>.p<period>"
///       and the oldest siblings beyond n are pruned only after the new
///       one is published. --resume then names the rotation BASE and the
///       newest sibling that validates is loaded.
///   --workers <n>             (EDGESLICE_WORKERS) run the evaluation's
///       RAs in n supervised worker processes over the ESFR wire
///       protocol; 0 (default) keeps everything in-process. Bit-identical
///       at any n, including under worker-kill chaos plans.
///   --telemetry-interval <n>  (EDGESLICE_TELEMETRY_INTERVAL) ship each
///       worker's metrics/span/event telemetry to the supervisor every n
///       periods (default 1); 0 disables shipping. Observation only:
///       digests are bit-identical at any cadence.
///   --gemm <mode>             (EDGESLICE_GEMM) pin the nn GEMM backend:
///       scalar | avx2 | auto (default auto). Pinning is a reproducibility
///       statement — "avx2" on an unsupported CPU is an error, never a
///       silent fallback. See DESIGN.md "GEMM dispatch".
Setup parse_common_flags(int argc, char** argv, Setup setup,
                         const std::vector<std::string>& extra_flags = {});

/// Printing helpers for paper-style tables.
void print_header(const std::string& title, const std::string& figure);
void print_series_header(const std::vector<std::string>& columns);
void print_row(const std::vector<double>& values);

}  // namespace edgeslice::bench
