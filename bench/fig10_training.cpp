// Fig. 10 — Impact of the training regime (trace-driven simulation).
//
// (a) System performance vs the number of training steps. The paper sweeps
//     {1e5, 5e5, 1e6, 1.5e6}; at CPU scale the sweep uses proportionally
//     reduced stand-ins {1/8, 1/4, 1/2, 1} of --steps (default 12000). The
//     shape claim: an under-trained agent is *worse than TARO*; more
//     training monotonically helps.
// (b) System performance for the five training techniques (DDPG, SAC, PPO,
//     TRPO, VPG) at equal step budget. The paper: DDPG best.
#include "common.h"

using namespace edgeslice;
using namespace edgeslice::bench;

int main(int argc, char** argv) {
  Setup base = parse_common_flags(argc, argv, simulation_setup());
  Rng rng(base.seed);

  print_header("Fig. 10: training techniques", "Fig. 10");

  // ---- (a): training-step sweep -------------------------------------------
  std::printf("\n# Fig. 10(a): system performance vs training steps\n");
  print_series_header({"steps", "EdgeSlice", "EdgeSlice-NT", "TARO"});
  const auto taro = run_contender(base, Contender::Taro, rng);
  for (double fraction : {0.125, 0.25, 0.5, 1.0}) {
    Setup setup = base;
    setup.train_steps =
        static_cast<std::size_t>(fraction * static_cast<double>(base.train_steps));
    const auto es_agent = train_agent_for(setup, rl::Algorithm::Ddpg, true, rng);
    const auto nt_agent = train_agent_for(setup, rl::Algorithm::Ddpg, false, rng);
    const auto es = run_contender(setup, Contender::EdgeSlice, rng, es_agent);
    const auto nt = run_contender(setup, Contender::EdgeSliceNt, rng, nt_agent);
    print_row({static_cast<double>(setup.train_steps), es.total_performance,
               nt.total_performance, taro.total_performance});
  }

  // ---- (b): training techniques -------------------------------------------
  std::printf("\n# Fig. 10(b): system performance vs training technique\n");
  print_series_header({"technique", "system-perf"});
  const rl::Algorithm algorithms[] = {rl::Algorithm::Ddpg, rl::Algorithm::Sac,
                                      rl::Algorithm::Ppo, rl::Algorithm::Trpo,
                                      rl::Algorithm::Vpg};
  for (const auto algorithm : algorithms) {
    const auto agent = train_agent_for(base, algorithm, true, rng);
    const auto result = run_contender(base, Contender::EdgeSlice, rng, agent);
    std::printf("  %14s %14.3f\n", rl::algorithm_name(algorithm),
                result.total_performance);
  }
  return 0;
}
