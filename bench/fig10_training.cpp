// Fig. 10 — Impact of the training regime (trace-driven simulation).
//
// (a) System performance vs the number of training steps. The paper sweeps
//     {1e5, 5e5, 1e6, 1.5e6}; at CPU scale the sweep uses proportionally
//     reduced stand-ins {1/8, 1/4, 1/2, 1} of --steps (default 12000). The
//     shape claim: an under-trained agent is *worse than TARO*; more
//     training monotonically helps.
// (b) System performance for the five training techniques (DDPG, SAC, PPO,
//     TRPO, VPG) at equal step budget. The paper: DDPG best.
//
// With --threads N (or EDGESLICE_THREADS) the independent trainings of
// each part fan out across a deterministic thread pool; results are
// bit-identical to --threads 1. The run also writes BENCH_training.json:
//   - sequential vs parallel training wall-clock and speedup, with the
//     timed thread count clamped to the hardware (an oversubscribed
//     request is recorded as such, not timed as a fake slowdown);
//   - kernel-only matmul GFLOP/s per GEMM backend (pre-allocated output,
//     untimed warm-up rep — the kernel, not allocation, is measured);
//   - deployment inference steps/second with cross-agent batched
//     inference on vs off, plus the bit-identity of the two trajectories.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>

#include "common.h"
#include "env/service_model.h"
#include "nn/gemm.h"
#include "rl/frozen.h"

using namespace edgeslice;
using namespace edgeslice::bench;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct TimingJob {
  std::unique_ptr<env::RaEnvironment> environment;
  std::unique_ptr<rl::Ddpg> agent;
};

/// A fresh fleet of small training jobs (no disk cache involved), built
/// identically per call so sequential and pooled runs are comparable.
std::vector<TimingJob> make_timing_fleet(std::size_t jobs, std::uint64_t seed) {
  const auto model =
      std::make_shared<env::DirectServiceModel>(env::prototype_capacity());
  const Rng parent(seed);
  std::vector<TimingJob> fleet(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    env::RaEnvironmentConfig config;  // 2 slices, T = 10
    fleet[i].environment = std::make_unique<env::RaEnvironment>(
        config,
        std::vector<env::AppProfile>{env::slice1_profile(), env::slice2_profile()},
        model, env::make_queue_power_perf(), parent.spawn(10 + i));
    rl::DdpgConfig ddpg;
    ddpg.base.state_dim = fleet[i].environment->state_dim();
    ddpg.base.action_dim = fleet[i].environment->action_dim();
    ddpg.base.hidden = 64;
    ddpg.batch_size = 64;
    ddpg.warmup = 128;
    Rng agent_rng = parent.spawn(20 + i);
    fleet[i].agent = std::make_unique<rl::Ddpg>(ddpg, agent_rng);
  }
  return fleet;
}

struct TimedBatch {
  double seconds = 0.0;
  std::vector<core::TrainingResult> results;
};

TimedBatch time_training_batch(std::size_t jobs, std::size_t steps,
                               std::uint64_t seed, ThreadPool* pool) {
  auto fleet = make_timing_fleet(jobs, seed);
  const Rng parent(seed);
  std::vector<core::TrainingJob> batch(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    batch[i].agent = fleet[i].agent.get();
    batch[i].environment = fleet[i].environment.get();
    batch[i].config.steps = steps;
    batch[i].rng = parent.spawn(30 + i);
  }
  TimedBatch out;
  const auto start = Clock::now();
  out.results = core::train_agents(batch, pool);
  out.seconds = seconds_since(start);
  return out;
}

/// Kernel-only matmul throughput of one GEMM backend (the training hot
/// path). The output is pre-allocated and the first rep is an untimed
/// warm-up, so the number measures the kernel — the historic version
/// timed a fresh allocation + zero-fill and a cold first rep in every
/// sample. Restores nothing: the caller re-pins the backend afterwards.
double measure_matmul_gflops(nn::GemmBackend backend) {
  Rng rng(1);
  nn::Matrix a(256, 256);
  nn::Matrix b(256, 256);
  for (auto& v : a.data()) v = rng.normal();
  for (auto& v : b.data()) v = rng.normal();
  nn::set_gemm_backend(backend);
  nn::Matrix out;
  a.matmul_into(b, out);  // warm-up: allocates out, faults pages, warms caches
  constexpr int kReps = 40;
  double sink = out(0, 0);
  const auto start = Clock::now();
  for (int r = 0; r < kReps; ++r) {
    a.matmul_into(b, out);
    sink += out(0, 0);
  }
  const double elapsed = seconds_since(start);
  // Keep the accumulator observable so the loop cannot be elided.
  std::fprintf(stderr, "[bench] matmul sink (%s) %.3e\n",
               nn::gemm_backend_name(backend), sink);
  const double flops = 2.0 * 256.0 * 256.0 * 256.0 * kReps;
  return flops / elapsed / 1e9;
}

struct InferenceTiming {
  double seconds = 0.0;
  double steps_per_second = 0.0;  // RA-intervals per second
  std::vector<double> period_performance;  // identity probe
};

/// Time a deployment-shaped run — every RA a LearnedPolicy over one
/// shared frozen actor, exactly how run_contender deploys — with
/// cross-agent batched inference on or off. The two trajectories must be
/// bit-identical; only the wall clock may differ. Inference cost does not
/// depend on the weights, so a fresh (untrained) actor of the deployed
/// architecture keeps the measurement cheap.
InferenceTiming time_deployment(const Setup& setup, bool batched,
                                std::size_t periods) {
  Rng rng(setup.seed);
  const auto profiles = make_profiles(setup.slices, rng);
  const auto model = make_service_model(profiles);
  auto environments = make_environments(setup, profiles, model,
                                        /*traffic_in_state=*/true);
  Rng actor_rng = Rng(setup.seed).spawn(99);
  const auto agent = std::make_shared<rl::FrozenActor>(
      nn::Mlp({environments.front()->state_dim(), 128, 128,
               environments.front()->action_dim()},
              nn::Activation::LeakyRelu, nn::Activation::Sigmoid, actor_rng));
  std::vector<std::unique_ptr<core::RaPolicy>> policies;
  for (std::size_t j = 0; j < setup.ras; ++j) {
    policies.push_back(std::make_unique<core::LearnedPolicy>(agent, /*learn=*/false));
  }
  core::CoordinatorConfig coordinator;
  coordinator.slices = setup.slices;
  coordinator.ras = setup.ras;
  core::SystemConfig system_config;
  system_config.batched_inference = batched;
  std::vector<env::RaEnvironment*> env_ptrs;
  std::vector<core::RaPolicy*> policy_ptrs;
  for (auto& e : environments) env_ptrs.push_back(e.get());
  for (auto& p : policies) policy_ptrs.push_back(p.get());
  core::EdgeSliceSystem system(env_ptrs, policy_ptrs, coordinator, system_config);

  InferenceTiming out;
  out.period_performance.reserve(periods);
  const auto start = Clock::now();
  for (std::size_t p = 0; p < periods; ++p) {
    out.period_performance.push_back(system.run_period().system_performance);
  }
  out.seconds = seconds_since(start);
  const double steps =
      static_cast<double>(setup.ras * setup.intervals_per_period * periods);
  out.steps_per_second = out.seconds > 0.0 ? steps / out.seconds : 0.0;
  return out;
}

/// Everything BENCH_training.json records.
struct BenchRecord {
  std::size_t threads_requested = 0;
  std::size_t threads_timed = 0;
  bool oversubscribed = false;
  std::size_t timing_jobs = 0;
  std::size_t timing_steps = 0;
  double sequential_seconds = 0.0;
  double parallel_seconds = 0.0;
  bool bit_identical = false;
  const char* gemm_backend = "?";
  double matmul_gflops = 0.0;         // the run's active backend
  double matmul_gflops_scalar = 0.0;
  double matmul_gflops_avx2 = 0.0;    // 0 when the CPU lacks AVX2+FMA
  double inference_steps_per_second_batched = 0.0;
  double inference_steps_per_second_unbatched = 0.0;
  bool inference_bit_identical = false;
};

void write_bench_json(const BenchRecord& r) {
  const auto json_bool = [](bool b) { return b ? "true" : "false"; };
  std::ofstream out("BENCH_training.json");
  out << "{\n";
  out << "  \"threads\": " << r.threads_requested << ",\n";
  out << "  \"threads_timed\": " << r.threads_timed << ",\n";
  out << "  \"oversubscribed\": " << json_bool(r.oversubscribed) << ",\n";
  out << "  \"hardware_threads\": " << ThreadPool::hardware_threads() << ",\n";
  out << "  \"timing_jobs\": " << r.timing_jobs << ",\n";
  out << "  \"timing_steps_per_job\": " << r.timing_steps << ",\n";
  out << "  \"sequential_seconds\": " << r.sequential_seconds << ",\n";
  out << "  \"parallel_seconds\": " << r.parallel_seconds << ",\n";
  out << "  \"speedup\": "
      << (r.parallel_seconds > 0.0 ? r.sequential_seconds / r.parallel_seconds
                                   : 0.0)
      << ",\n";
  out << "  \"bit_identical\": " << json_bool(r.bit_identical) << ",\n";
  out << "  \"gemm_backend\": \"" << r.gemm_backend << "\",\n";
  out << "  \"matmul_gflops\": " << r.matmul_gflops << ",\n";
  out << "  \"matmul_gflops_scalar\": " << r.matmul_gflops_scalar << ",\n";
  out << "  \"matmul_gflops_avx2\": " << r.matmul_gflops_avx2 << ",\n";
  out << "  \"inference_steps_per_second_batched\": "
      << r.inference_steps_per_second_batched << ",\n";
  out << "  \"inference_steps_per_second_unbatched\": "
      << r.inference_steps_per_second_unbatched << ",\n";
  out << "  \"inference_batched_speedup\": "
      << (r.inference_steps_per_second_unbatched > 0.0
              ? r.inference_steps_per_second_batched /
                    r.inference_steps_per_second_unbatched
              : 0.0)
      << ",\n";
  out << "  \"inference_bit_identical\": " << json_bool(r.inference_bit_identical)
      << "\n";
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Setup base = parse_common_flags(argc, argv, simulation_setup());
  ThreadPool pool(base.threads);
  base.pool = base.threads > 1 ? &pool : nullptr;
  Rng rng(base.seed);

  print_header("Fig. 10: training techniques", "Fig. 10");

  // ---- training-throughput measurement (BENCH_training.json) --------------
  // A small fresh fleet (no disk cache) trained twice: sequentially, then
  // on a pool. The two runs must agree bit for bit; the wall-clock ratio
  // is the training speedup on this machine. The timed pool is clamped to
  // the hardware thread count: timing 4 software threads on a 1-core box
  // measures scheduler churn, not parallel speedup, and used to publish
  // nonsense like "speedup": 0.95. The requested count is still recorded,
  // with oversubscribed = true flagging the clamp.
  {
    BenchRecord record;
    record.threads_requested = base.threads;
    record.threads_timed =
        std::min(base.threads, std::max<std::size_t>(ThreadPool::hardware_threads(), 1));
    record.oversubscribed = base.threads > record.threads_timed;
    if (record.oversubscribed) {
      std::fprintf(stderr,
                   "[bench] %zu threads requested on %zu hardware threads; "
                   "timing with %zu (oversubscribed)\n",
                   base.threads, ThreadPool::hardware_threads(),
                   record.threads_timed);
    }
    record.timing_jobs = 4;
    record.timing_steps = std::min<std::size_t>(base.train_steps, 2000);
    std::fprintf(stderr, "[bench] timing %zu training jobs x %zu steps ...\n",
                 record.timing_jobs, record.timing_steps);
    std::optional<ThreadPool> timing_pool;
    if (record.threads_timed > 1) timing_pool.emplace(record.threads_timed);
    const TimedBatch sequential =
        time_training_batch(record.timing_jobs, record.timing_steps, base.seed,
                            nullptr);
    const TimedBatch parallel =
        time_training_batch(record.timing_jobs, record.timing_steps, base.seed,
                            timing_pool ? &*timing_pool : nullptr);
    record.sequential_seconds = sequential.seconds;
    record.parallel_seconds = parallel.seconds;
    record.bit_identical = sequential.results.size() == parallel.results.size();
    for (std::size_t i = 0; record.bit_identical && i < sequential.results.size();
         ++i) {
      record.bit_identical = sequential.results[i].reward_history ==
                                 parallel.results[i].reward_history &&
                             sequential.results[i].final_mean_reward ==
                                 parallel.results[i].final_mean_reward;
    }

    // Kernel-only GFLOP/s for every backend this CPU can run, then
    // restore the run's backend for everything that follows.
    const nn::GemmBackend active = nn::active_gemm_backend();
    record.gemm_backend = nn::gemm_backend_name(active);
    record.matmul_gflops_scalar = measure_matmul_gflops(nn::GemmBackend::Scalar);
    if (nn::cpu_supports_avx2_fma()) {
      record.matmul_gflops_avx2 = measure_matmul_gflops(nn::GemmBackend::Avx2);
    }
    nn::set_gemm_backend(active);
    record.matmul_gflops = active == nn::GemmBackend::Avx2
                               ? record.matmul_gflops_avx2
                               : record.matmul_gflops_scalar;

    // Deployment inference throughput, batched vs per-agent, same fleet.
    // An untimed warm-up run first (the first fleet construction faults in
    // the service-model grids and the allocator arena), then alternating
    // best-of-3 per variant: a single sample per variant on a busy box
    // reads scheduler noise as a speedup or slowdown of whichever variant
    // drew the quiet slice. Best-of over interleaved samples is the
    // honest throughput estimate.
    const std::size_t inference_periods = 150;
    time_deployment(base, /*batched=*/false, 2);
    InferenceTiming unbatched, batched;
    record.inference_bit_identical = true;
    for (int sample = 0; sample < 3; ++sample) {
      const InferenceTiming u =
          time_deployment(base, /*batched=*/false, inference_periods);
      const InferenceTiming b =
          time_deployment(base, /*batched=*/true, inference_periods);
      record.inference_bit_identical = record.inference_bit_identical &&
                                       u.period_performance ==
                                           b.period_performance;
      if (sample == 0 || u.seconds < unbatched.seconds) unbatched = u;
      if (sample == 0 || b.seconds < batched.seconds) batched = b;
    }
    record.inference_steps_per_second_batched = batched.steps_per_second;
    record.inference_steps_per_second_unbatched = unbatched.steps_per_second;

    write_bench_json(record);
    std::fprintf(stderr,
                 "[bench] sequential %.2fs, parallel %.2fs (x%.2f, %s), "
                 "matmul %.2f GFLOP/s (scalar %.2f, avx2 %.2f), "
                 "inference %.0f steps/s batched vs %.0f unbatched (%s) "
                 "-> BENCH_training.json\n",
                 record.sequential_seconds, record.parallel_seconds,
                 record.parallel_seconds > 0.0
                     ? record.sequential_seconds / record.parallel_seconds
                     : 0.0,
                 record.bit_identical ? "bit-identical" : "MISMATCH",
                 record.matmul_gflops, record.matmul_gflops_scalar,
                 record.matmul_gflops_avx2,
                 record.inference_steps_per_second_batched,
                 record.inference_steps_per_second_unbatched,
                 record.inference_bit_identical ? "bit-identical" : "MISMATCH");
  }

  // ---- (a): training-step sweep -------------------------------------------
  std::printf("\n# Fig. 10(a): system performance vs training steps\n");
  print_series_header({"steps", "EdgeSlice", "EdgeSlice-NT", "TARO"});
  const auto taro = run_contender(base, Contender::Taro, rng);
  const double fractions[] = {0.125, 0.25, 0.5, 1.0};
  std::vector<TrainingSpec> sweep_specs;
  for (double fraction : fractions) {
    Setup setup = base;
    setup.train_steps =
        static_cast<std::size_t>(fraction * static_cast<double>(base.train_steps));
    sweep_specs.push_back({setup, rl::Algorithm::Ddpg, true});
    sweep_specs.push_back({setup, rl::Algorithm::Ddpg, false});
  }
  const auto sweep_agents = train_agents_for(sweep_specs, rng, base.pool);
  for (std::size_t f = 0; f < std::size(fractions); ++f) {
    const Setup& setup = sweep_specs[2 * f].setup;
    const auto es =
        run_contender(setup, Contender::EdgeSlice, rng, sweep_agents[2 * f]);
    const auto nt =
        run_contender(setup, Contender::EdgeSliceNt, rng, sweep_agents[2 * f + 1]);
    print_row({static_cast<double>(setup.train_steps), es.total_performance,
               nt.total_performance, taro.total_performance});
  }

  // ---- (b): training techniques -------------------------------------------
  std::printf("\n# Fig. 10(b): system performance vs training technique\n");
  print_series_header({"technique", "system-perf"});
  const rl::Algorithm algorithms[] = {rl::Algorithm::Ddpg, rl::Algorithm::Sac,
                                      rl::Algorithm::Ppo, rl::Algorithm::Trpo,
                                      rl::Algorithm::Vpg};
  std::vector<TrainingSpec> technique_specs;
  for (const auto algorithm : algorithms) {
    technique_specs.push_back({base, algorithm, true});
  }
  const auto technique_agents = train_agents_for(technique_specs, rng, base.pool);
  for (std::size_t k = 0; k < std::size(algorithms); ++k) {
    const auto result =
        run_contender(base, Contender::EdgeSlice, rng, technique_agents[k]);
    std::printf("  %14s %14.3f\n", rl::algorithm_name(algorithms[k]),
                result.total_performance);
  }
  return 0;
}
