// Fig. 10 — Impact of the training regime (trace-driven simulation).
//
// (a) System performance vs the number of training steps. The paper sweeps
//     {1e5, 5e5, 1e6, 1.5e6}; at CPU scale the sweep uses proportionally
//     reduced stand-ins {1/8, 1/4, 1/2, 1} of --steps (default 12000). The
//     shape claim: an under-trained agent is *worse than TARO*; more
//     training monotonically helps.
// (b) System performance for the five training techniques (DDPG, SAC, PPO,
//     TRPO, VPG) at equal step budget. The paper: DDPG best.
//
// With --threads N (or EDGESLICE_THREADS) the independent trainings of
// each part fan out across a deterministic thread pool; results are
// bit-identical to --threads 1. The run also times a small
// sequential-vs-parallel training batch and writes the measurements to
// BENCH_training.json (wall-clock, speedup, matmul GFLOP/s).
#include <chrono>
#include <cstdio>
#include <fstream>

#include "common.h"
#include "env/service_model.h"

using namespace edgeslice;
using namespace edgeslice::bench;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct TimingJob {
  std::unique_ptr<env::RaEnvironment> environment;
  std::unique_ptr<rl::Ddpg> agent;
};

/// A fresh fleet of small training jobs (no disk cache involved), built
/// identically per call so sequential and pooled runs are comparable.
std::vector<TimingJob> make_timing_fleet(std::size_t jobs, std::uint64_t seed) {
  const auto model =
      std::make_shared<env::DirectServiceModel>(env::prototype_capacity());
  const Rng parent(seed);
  std::vector<TimingJob> fleet(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    env::RaEnvironmentConfig config;  // 2 slices, T = 10
    fleet[i].environment = std::make_unique<env::RaEnvironment>(
        config,
        std::vector<env::AppProfile>{env::slice1_profile(), env::slice2_profile()},
        model, env::make_queue_power_perf(), parent.spawn(10 + i));
    rl::DdpgConfig ddpg;
    ddpg.base.state_dim = fleet[i].environment->state_dim();
    ddpg.base.action_dim = fleet[i].environment->action_dim();
    ddpg.base.hidden = 64;
    ddpg.batch_size = 64;
    ddpg.warmup = 128;
    Rng agent_rng = parent.spawn(20 + i);
    fleet[i].agent = std::make_unique<rl::Ddpg>(ddpg, agent_rng);
  }
  return fleet;
}

struct TimedBatch {
  double seconds = 0.0;
  std::vector<core::TrainingResult> results;
};

TimedBatch time_training_batch(std::size_t jobs, std::size_t steps,
                               std::uint64_t seed, ThreadPool* pool) {
  auto fleet = make_timing_fleet(jobs, seed);
  const Rng parent(seed);
  std::vector<core::TrainingJob> batch(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    batch[i].agent = fleet[i].agent.get();
    batch[i].environment = fleet[i].environment.get();
    batch[i].config.steps = steps;
    batch[i].rng = parent.spawn(30 + i);
  }
  TimedBatch out;
  const auto start = Clock::now();
  out.results = core::train_agents(batch, pool);
  out.seconds = seconds_since(start);
  return out;
}

/// Sustained matmul throughput of the nn substrate (the training hot path).
double measure_matmul_gflops() {
  Rng rng(1);
  nn::Matrix a(256, 256);
  nn::Matrix b(256, 256);
  for (auto& v : a.data()) v = rng.normal();
  for (auto& v : b.data()) v = rng.normal();
  constexpr int kReps = 40;
  double sink = 0.0;
  const auto start = Clock::now();
  for (int r = 0; r < kReps; ++r) {
    sink += a.matmul(b)(0, 0);
  }
  const double elapsed = seconds_since(start);
  const double flops = 2.0 * 256.0 * 256.0 * 256.0 * kReps;
  // Keep the accumulator observable so the loop cannot be elided.
  std::fprintf(stderr, "[bench] matmul sink %.3e\n", sink);
  return flops / elapsed / 1e9;
}

void write_bench_json(const Setup& base, const TimedBatch& sequential,
                      const TimedBatch& parallel, bool bit_identical,
                      std::size_t timing_jobs, std::size_t timing_steps,
                      double gflops) {
  std::ofstream out("BENCH_training.json");
  out << "{\n";
  out << "  \"threads\": " << base.threads << ",\n";
  out << "  \"hardware_threads\": " << ThreadPool::hardware_threads() << ",\n";
  out << "  \"timing_jobs\": " << timing_jobs << ",\n";
  out << "  \"timing_steps_per_job\": " << timing_steps << ",\n";
  out << "  \"sequential_seconds\": " << sequential.seconds << ",\n";
  out << "  \"parallel_seconds\": " << parallel.seconds << ",\n";
  out << "  \"speedup\": "
      << (parallel.seconds > 0.0 ? sequential.seconds / parallel.seconds : 0.0)
      << ",\n";
  out << "  \"bit_identical\": " << (bit_identical ? "true" : "false") << ",\n";
  out << "  \"matmul_gflops\": " << gflops << "\n";
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Setup base = parse_common_flags(argc, argv, simulation_setup());
  ThreadPool pool(base.threads);
  base.pool = base.threads > 1 ? &pool : nullptr;
  Rng rng(base.seed);

  print_header("Fig. 10: training techniques", "Fig. 10");

  // ---- training-throughput measurement (BENCH_training.json) --------------
  // A small fresh fleet (no disk cache) trained twice: sequentially, then
  // on the pool. The two runs must agree bit for bit; the wall-clock ratio
  // is the training speedup on this machine.
  {
    const std::size_t timing_jobs = 4;
    const std::size_t timing_steps = std::min<std::size_t>(base.train_steps, 2000);
    std::fprintf(stderr, "[bench] timing %zu training jobs x %zu steps ...\n",
                 timing_jobs, timing_steps);
    const TimedBatch sequential =
        time_training_batch(timing_jobs, timing_steps, base.seed, nullptr);
    const TimedBatch parallel = time_training_batch(
        timing_jobs, timing_steps, base.seed, base.pool);
    bool bit_identical = sequential.results.size() == parallel.results.size();
    for (std::size_t i = 0; bit_identical && i < sequential.results.size(); ++i) {
      bit_identical = sequential.results[i].reward_history ==
                          parallel.results[i].reward_history &&
                      sequential.results[i].final_mean_reward ==
                          parallel.results[i].final_mean_reward;
    }
    const double gflops = measure_matmul_gflops();
    write_bench_json(base, sequential, parallel, bit_identical, timing_jobs,
                     timing_steps, gflops);
    std::fprintf(stderr,
                 "[bench] sequential %.2fs, parallel %.2fs (x%.2f, %s), "
                 "matmul %.2f GFLOP/s -> BENCH_training.json\n",
                 sequential.seconds, parallel.seconds,
                 parallel.seconds > 0.0 ? sequential.seconds / parallel.seconds : 0.0,
                 bit_identical ? "bit-identical" : "MISMATCH", gflops);
  }

  // ---- (a): training-step sweep -------------------------------------------
  std::printf("\n# Fig. 10(a): system performance vs training steps\n");
  print_series_header({"steps", "EdgeSlice", "EdgeSlice-NT", "TARO"});
  const auto taro = run_contender(base, Contender::Taro, rng);
  const double fractions[] = {0.125, 0.25, 0.5, 1.0};
  std::vector<TrainingSpec> sweep_specs;
  for (double fraction : fractions) {
    Setup setup = base;
    setup.train_steps =
        static_cast<std::size_t>(fraction * static_cast<double>(base.train_steps));
    sweep_specs.push_back({setup, rl::Algorithm::Ddpg, true});
    sweep_specs.push_back({setup, rl::Algorithm::Ddpg, false});
  }
  const auto sweep_agents = train_agents_for(sweep_specs, rng, base.pool);
  for (std::size_t f = 0; f < std::size(fractions); ++f) {
    const Setup& setup = sweep_specs[2 * f].setup;
    const auto es =
        run_contender(setup, Contender::EdgeSlice, rng, sweep_agents[2 * f]);
    const auto nt =
        run_contender(setup, Contender::EdgeSliceNt, rng, sweep_agents[2 * f + 1]);
    print_row({static_cast<double>(setup.train_steps), es.total_performance,
               nt.total_performance, taro.total_performance});
  }

  // ---- (b): training techniques -------------------------------------------
  std::printf("\n# Fig. 10(b): system performance vs training technique\n");
  print_series_header({"technique", "system-perf"});
  const rl::Algorithm algorithms[] = {rl::Algorithm::Ddpg, rl::Algorithm::Sac,
                                      rl::Algorithm::Ppo, rl::Algorithm::Trpo,
                                      rl::Algorithm::Vpg};
  std::vector<TrainingSpec> technique_specs;
  for (const auto algorithm : algorithms) {
    technique_specs.push_back({base, algorithm, true});
  }
  const auto technique_agents = train_agents_for(technique_specs, rng, base.pool);
  for (std::size_t k = 0; k < std::size(algorithms); ++k) {
    const auto result =
        run_contender(base, Contender::EdgeSlice, rng, technique_agents[k]);
    std::printf("  %14s %14.3f\n", rl::algorithm_name(algorithms[k]),
                result.total_performance);
  }
  return 0;
}
