// Fig. 7 — Multi-resource orchestration of EdgeSlice over time.
//
// Normalized radio / transport / computing allocation per slice in one RA,
// per time interval. The paper's shape: slice 1 (traffic-heavy) holds most
// radio and transport resources; slice 2 (compute-heavy) initially holds
// most computing, and allocations stabilize after ~6 coordination rounds.
#include "common.h"

#include "core/monitor.h"

using namespace edgeslice;
using namespace edgeslice::bench;

int main(int argc, char** argv) {
  Setup setup = parse_common_flags(argc, argv, Setup{});
  Rng rng(setup.seed);

  core::SystemMonitor monitor(setup.slices, setup.ras);
  print_header("Fig. 7: normalized resource usage per slice over time", "Fig. 7");
  run_contender(setup, Contender::EdgeSlice, rng, nullptr, &monitor);

  const char* names[] = {"radio", "transport", "computing"};
  for (std::size_t k = 0; k < env::kResources; ++k) {
    std::printf("\n# Fig. 7(%c): %s resources (RA 0)\n", static_cast<char>('a' + k),
                names[k]);
    print_series_header({"interval", "slice1", "slice2"});
    const auto s1 = monitor.resource_usage_series(0, 0, k);
    const auto s2 = monitor.resource_usage_series(0, 1, k);
    for (std::size_t t = 0; t < s1.size(); ++t) {
      // Normalize the pair so the columns read as usage shares, matching
      // the figure's stacked-area presentation.
      const double total = s1[t] + s2[t];
      const double n1 = total > 1e-9 ? s1[t] / total : 0.0;
      const double n2 = total > 1e-9 ? s2[t] / total : 0.0;
      print_row({static_cast<double>(t + 1), n1, n2});
    }
    // Summary: who dominates this resource after convergence?
    const std::size_t start = s1.size() * 7 / 10;
    double m1 = 0.0;
    double m2 = 0.0;
    for (std::size_t t = start; t < s1.size(); ++t) {
      m1 += s1[t];
      m2 += s2[t];
    }
    std::printf("# converged allocation share: slice1=%.2f slice2=%.2f\n",
                m1 / (m1 + m2), m2 / (m1 + m2));
  }
  return 0;
}
