// Fig. 8 — The orchestration agent without central coordination.
//
// (a) CDF of slice performance under randomly generated traffic loads
//     (paper: 80% of EdgeSlice samples above -30 vs 11% TARO, 55% NT).
// (b)-(d) Average resource-usage ratio eta1/eta2 vs the two slices'
//     traffic loads, for EdgeSlice / EdgeSlice-NT / TARO. EdgeSlice's
//     ratio tracks both traffic and per-domain demand; NT's is constant;
//     TARO's tracks traffic only.
#include "common.h"

#include "core/policies.h"

using namespace edgeslice;
using namespace edgeslice::bench;

namespace {

struct EvalSample {
  std::vector<double> slice_performance;  // per-interval U samples
  double usage_ratio = 0.0;               // eta1 / eta2
};

/// Run one uncoordinated episode at fixed arrival rates; returns per-interval
/// slice performance samples and the mean usage ratio.
EvalSample evaluate(const Setup& setup, core::RaPolicy& policy,
                    const std::vector<env::AppProfile>& profiles,
                    std::shared_ptr<const env::ServiceModel> model, double rate1,
                    double rate2, bool traffic_in_state, std::uint64_t seed) {
  env::RaEnvironment environment(env_config(setup, traffic_in_state), profiles, model,
                                 make_perf(setup), Rng(seed));
  environment.set_arrival_rates({rate1, rate2});
  EvalSample sample;
  double eta1 = 0.0;
  double eta2 = 0.0;
  const std::size_t intervals = 3 * setup.intervals_per_period;
  for (std::size_t t = 0; t < intervals; ++t) {
    const auto action = policy.decide(environment);
    const auto result = environment.step(action);
    for (double u : result.performance) sample.slice_performance.push_back(u);
    // eta_i = sum_k x_{i,k} / r_tot_k (normalized resources: r_tot = 1).
    for (std::size_t k = 0; k < env::kResources; ++k) {
      eta1 += action[0 * env::kResources + k];
      eta2 += action[1 * env::kResources + k];
    }
  }
  sample.usage_ratio = eta2 > 1e-9 ? eta1 / eta2 : 0.0;
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  Setup setup = parse_common_flags(argc, argv, Setup{});
  Rng rng(setup.seed);
  Rng profile_rng(setup.seed);
  const auto profiles = make_profiles(setup.slices, profile_rng);
  const auto model = make_service_model(profiles);

  print_header("Fig. 8: orchestration agents without coordination", "Fig. 8");
  const auto es_agent = train_agent_for(setup, rl::Algorithm::Ddpg, true, rng);
  const auto nt_agent = train_agent_for(setup, rl::Algorithm::Ddpg, false, rng);
  core::LearnedPolicy es_policy(es_agent, false);
  core::LearnedPolicy nt_policy(nt_agent, false);
  core::TaroPolicy taro_policy;

  // ---- (a): CDF under random traffic loads --------------------------------
  std::vector<double> es_samples;
  std::vector<double> nt_samples;
  std::vector<double> taro_samples;
  Rng traffic_rng(setup.seed + 5);
  for (int episode = 0; episode < 40; ++episode) {
    const double r1 = traffic_rng.uniform(2.0, 18.0);
    const double r2 = traffic_rng.uniform(2.0, 18.0);
    const std::uint64_t seed = 9000 + static_cast<std::uint64_t>(episode);
    const auto es = evaluate(setup, es_policy, profiles, model, r1, r2, true, seed);
    const auto nt = evaluate(setup, nt_policy, profiles, model, r1, r2, false, seed);
    const auto ta = evaluate(setup, taro_policy, profiles, model, r1, r2, true, seed);
    es_samples.insert(es_samples.end(), es.slice_performance.begin(),
                      es.slice_performance.end());
    nt_samples.insert(nt_samples.end(), nt.slice_performance.begin(),
                      nt.slice_performance.end());
    taro_samples.insert(taro_samples.end(), ta.slice_performance.begin(),
                        ta.slice_performance.end());
  }
  std::printf("\n# Fig. 8(a): CDF of slice performance\n");
  print_series_header({"perf", "EdgeSlice", "EdgeSlice-NT", "TARO"});
  for (double threshold : {-500.0, -400.0, -300.0, -200.0, -100.0, -50.0, -30.0,
                           -10.0, -5.0, -1.0, 0.0}) {
    print_row({threshold, ecdf_at(es_samples, threshold), ecdf_at(nt_samples, threshold),
               ecdf_at(taro_samples, threshold)});
  }
  std::printf("# fraction of samples above -30: EdgeSlice=%.2f EdgeSlice-NT=%.2f "
              "TARO=%.2f (paper: 0.80 / 0.55 / 0.11)\n",
              1.0 - ecdf_at(es_samples, -30.0), 1.0 - ecdf_at(nt_samples, -30.0),
              1.0 - ecdf_at(taro_samples, -30.0));

  // ---- (b)-(d): usage ratio vs traffic ------------------------------------
  const char section[3] = {'b', 'c', 'd'};
  core::RaPolicy* policies[] = {&es_policy, &nt_policy, &taro_policy};
  const bool traffic_state[] = {true, false, true};
  for (int p = 0; p < 3; ++p) {
    std::printf("\n# Fig. 8(%c): usage ratio eta1/eta2 vs traffic — %s\n", section[p],
                contender_name(static_cast<Contender>(p)));
    print_series_header({"load1", "load2", "eta1/eta2"});
    for (double r1 : {5.0, 10.0, 15.0, 20.0}) {
      for (double r2 : {5.0, 10.0, 15.0, 20.0}) {
        const auto sample = evaluate(setup, *policies[p], profiles, model, r1, r2,
                                     traffic_state[p], 7000);
        print_row({r1, r2, sample.usage_ratio});
      }
    }
  }
  return 0;
}
