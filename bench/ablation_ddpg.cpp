// Ablation — DDPG implementation choices at reduced training budgets.
//
// Quantifies the two stabilizers documented in DESIGN.md Sec. 5 on the
// actual orchestration environment:
//   * inverting gradients (Hausknecht & Stone) vs plain actor gradients
//     — without it the sigmoid actor saturates at the action bound;
//   * the exploration-noise floor — the paper's pure 0.9999 decay is tuned
//     for 1e6 steps and collapses exploration long before a reduced budget
//     is exhausted.
// Reports the greedy validation score (sum of raw slice performance over
// 100 intervals, higher is better) of the best checkpoint per variant.
#include "common.h"

#include "core/training.h"
#include "rl/ddpg.h"

using namespace edgeslice;
using namespace edgeslice::bench;

namespace {

double train_variant(const Setup& setup, bool inverting, double noise_min, Rng& rng) {
  Rng profile_rng(setup.seed);
  const auto profiles = make_profiles(setup.slices, profile_rng);
  const auto model = make_service_model(profiles);
  env::RaEnvironment environment(env_config(setup, true), profiles, model,
                                 make_perf(setup), rng.spawn());
  rl::DdpgConfig config;
  config.base.state_dim = environment.state_dim();
  config.base.action_dim = environment.action_dim();
  config.base.hidden = 64;
  config.batch_size = 64;
  config.warmup = 128;
  config.noise_decay = 0.9996;
  config.noise_min = noise_min;
  config.inverting_gradients = inverting;
  rl::Ddpg agent(config, rng);
  core::TrainingConfig training;
  training.steps = setup.train_steps;
  training.validation_every = std::max<std::size_t>(1000, setup.train_steps / 12);
  const auto result = core::train_agent(agent, environment, training, rng);
  return result.best_policy.has_value() ? result.best_validation_score
                                        : core::validate_policy(agent, environment,
                                                                -25.0, 100);
}

}  // namespace

int main(int argc, char** argv) {
  Setup defaults;
  defaults.train_steps = 8000;  // 4 trainings: keep the sweep quick
  Setup setup = parse_common_flags(argc, argv, defaults);
  print_header("Ablation: DDPG stabilizers at reduced budgets",
               "DESIGN.md Sec. 5 items 4-5");
  print_series_header({"inverting-grad", "noise-floor", "best-val-score"});
  for (const bool inverting : {true, false}) {
    for (const double noise_min : {0.08, 0.01}) {
      Rng rng(setup.seed);
      const double score = train_variant(setup, inverting, noise_min, rng);
      print_row({inverting ? 1.0 : 0.0, noise_min, score});
    }
  }
  return 0;
}
