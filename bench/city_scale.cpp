// City-scale Milan-day bench.
//
// Replays one full simulated day — 24 orchestration periods of 6
// ten-minute bins by default — over a city grid of RAs (hundreds) each
// hosting several slices (thousands of slice queues total), with the SLA
// watchdog and flight recorder live, and reports throughput
// (periods/second), p99 coordinator-solve latency, and per-slice SLA
// violation rates into BENCH_city.json.
//
// Acceptance legs:
//   * scale:   city_scale --ras 128 --slices-per-ra 8   (1024 slice queues)
//   * crash:   city_scale --crash-at-period 12 --checkpoint-every 4
//              --checkpoint-out day.ckpt --checkpoint-keep 2 --events-out ...
//   * resume:  city_scale --resume day.ckpt --checkpoint-keep 2
// The per-period digest lines let the resumed run be diffed bit-for-bit
// against an uncrashed one (tests/core/test_city_scale.cpp automates it).
#include "city_common.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common.h"

using namespace edgeslice;
using namespace edgeslice::bench;

namespace {

/// Every field BENCH_city.json carries, in emission order. The docs check
/// (tests/docs_check.cmake) pins each name to EXPERIMENTS.md, and main()
/// verifies the emitted document covers exactly this table — so a field
/// cannot be added, renamed, or dropped without the docs following.
constexpr const char* kCityBenchFields[] = {
    "ras",
    "slices_per_ra",
    "periods",
    "intervals_per_period",
    "seed",
    "threads",
    "start_period",
    "periods_run",
    "wall_seconds",
    "periods_per_second",
    "p99_coordinator_solve_seconds",
    "total_performance",
    "sla_violations",
    "sla_violation_rate",
    "slice_violation_rates",
    "arena_upstream_allocations",
    "arena_high_water_bytes",
    "trajectory_digest",
};

std::string json_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string json_array(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += json_number(values[i]);
  }
  return out + "]";
}

/// Write the report, field order and names exactly per kCityBenchFields.
bool write_city_json(const std::string& path, const city::CityConfig& config,
                     std::size_t threads, const city::CityRun& run) {
  std::vector<std::pair<std::string, std::string>> fields;
  fields.emplace_back("ras", json_number(static_cast<double>(config.ras)));
  fields.emplace_back("slices_per_ra",
                      json_number(static_cast<double>(config.slices_per_ra)));
  fields.emplace_back("periods", json_number(static_cast<double>(config.periods)));
  fields.emplace_back("intervals_per_period",
                      json_number(static_cast<double>(config.intervals_per_period)));
  fields.emplace_back("seed", json_number(static_cast<double>(config.seed)));
  fields.emplace_back("threads", json_number(static_cast<double>(threads)));
  fields.emplace_back("start_period",
                      json_number(static_cast<double>(run.start_period)));
  fields.emplace_back("periods_run", json_number(static_cast<double>(run.periods_run)));
  fields.emplace_back("wall_seconds", json_number(run.wall_seconds));
  fields.emplace_back("periods_per_second", json_number(run.periods_per_second));
  fields.emplace_back("p99_coordinator_solve_seconds",
                      json_number(run.p99_solve_seconds));
  fields.emplace_back("total_performance", json_number(run.total_performance));
  fields.emplace_back("sla_violations",
                      json_number(static_cast<double>(run.sla_violations)));
  fields.emplace_back("sla_violation_rate", json_number(run.sla_violation_rate));
  fields.emplace_back("slice_violation_rates", json_array(run.slice_violation_rates));
  fields.emplace_back(
      "arena_upstream_allocations",
      json_number(static_cast<double>(run.arena.upstream_allocations)));
  fields.emplace_back("arena_high_water_bytes",
                      json_number(static_cast<double>(run.arena.high_water_bytes)));
  fields.emplace_back("trajectory_digest",
                      "\"" + city::digest_hex(run.trajectory_digest) + "\"");

  constexpr std::size_t kFieldCount =
      sizeof(kCityBenchFields) / sizeof(kCityBenchFields[0]);
  if (fields.size() != kFieldCount) {
    std::fprintf(stderr, "[city] field table out of sync with emission\n");
    return false;
  }
  for (std::size_t i = 0; i < kFieldCount; ++i) {
    if (fields[i].first != kCityBenchFields[i]) {
      std::fprintf(stderr, "[city] field %zu is \"%s\", table says \"%s\"\n", i,
                   fields[i].first.c_str(), kCityBenchFields[i]);
      return false;
    }
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) {
      std::fprintf(stderr, "[city] cannot write %s\n", tmp.c_str());
      return false;
    }
    out << "{\n";
    for (std::size_t i = 0; i < fields.size(); ++i) {
      out << "  \"" << fields[i].first << "\": " << fields[i].second;
      out << (i + 1 < fields.size() ? ",\n" : "\n");
    }
    out << "}\n";
  }
  std::remove(path.c_str());
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  Setup defaults;
  defaults.eval_periods = 24;
  const Setup setup = parse_common_flags(
      argc, argv, defaults,
      {"ras", "slices-per-ra", "intervals", "peak-rate", "crash-at-period", "out"});
  const CliArgs args(
      argc, argv,
      {"steps", "seed", "periods", "threads", "metrics-out", "telemetry-port",
       "metrics-interval", "events-out", "checkpoint-every", "checkpoint-out",
       "resume", "checkpoint-keep", "workers", "gemm", "telemetry-interval",
       "ras", "slices-per-ra", "intervals", "peak-rate", "crash-at-period",
       "out"});

  city::CityConfig config;
  config.ras = static_cast<std::size_t>(
      args.get_int("ras", static_cast<std::int64_t>(config.ras)));
  config.slices_per_ra = static_cast<std::size_t>(args.get_int(
      "slices-per-ra", static_cast<std::int64_t>(config.slices_per_ra)));
  config.periods = setup.eval_periods;
  config.intervals_per_period = static_cast<std::size_t>(args.get_int(
      "intervals", static_cast<std::int64_t>(config.intervals_per_period)));
  config.peak_rate = args.get_double("peak-rate", config.peak_rate);
  config.seed = setup.seed;
  config.checkpoint_every = setup.checkpoint_every;
  config.checkpoint_out = setup.checkpoint_out;
  config.resume_path = setup.resume_path;
  config.checkpoint_keep = setup.checkpoint_keep;
  const std::int64_t crash_at = args.get_int("crash-at-period", -1);
  if (crash_at >= 0) config.crash_at_period = static_cast<std::size_t>(crash_at);
  const std::string out_path = args.get("out", "BENCH_city.json");
  config.print_digests = true;

  ThreadPool pool(setup.threads == 0 ? 1 : setup.threads);
  config.pool = setup.threads > 1 ? &pool : nullptr;

  print_header("City-scale Milan day",
               "periods/second, p99 coordinator solve, SLA violation rates");
  std::printf("# %zu RAs x %zu slices (%zu slice queues), %zu periods x %zu bins, "
              "peak rate %.2f, seed %llu, %zu threads\n",
              config.ras, config.slices_per_ra, config.ras * config.slices_per_ra,
              config.periods, config.intervals_per_period, config.peak_rate,
              static_cast<unsigned long long>(config.seed), setup.threads);

  // run_city streams one digest line per period (flushed, so the crash
  // leg keeps its pre-abort lines): the crash/resume test diffs them
  // against an uncrashed run's lines.
  const city::CityRun run = city::run_city(config);

  print_series_header({"periods/s", "p99-solve-ms", "sla-viol-rate", "perf-total"});
  print_row({run.periods_per_second, run.p99_solve_seconds * 1e3,
             run.sla_violation_rate, run.total_performance});
  std::printf("# arena: %zu upstream allocations (%zu after warm-up), "
              "high water %zu bytes\n",
              run.arena.upstream_allocations, run.arena_upstream_after_warmup,
              run.arena.high_water_bytes);

  if (!write_city_json(out_path, config, setup.threads, run)) return 2;
  std::printf("# wrote %s\n", out_path.c_str());
  return 0;
}
