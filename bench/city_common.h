// City-scale Milan-day bench scaffolding (bench/city_scale.cpp and the
// city smoke tests share this so the small-scale assertions exercise the
// exact code path the full-scale bench runs).
//
// The city run instantiates a city grid of RAs — one synthetic diurnal
// cell profile per RA (src/trace/diurnal.h, the Telecom Italia-style
// generator) — and replays one full simulated day through
// EdgeSliceSystem::run_period_into with the SLA watchdog and flight
// recorder live. The day is `periods` orchestration periods of
// `intervals_per_period` bins: the defaults (24 x 6) walk 144 ten-minute
// bins, the Telecom Italia trace's native resolution.
//
// Determinism: the whole trajectory is a pure function of CityConfig's
// shape + seed. run_city() folds each period's results into an FNV-1a
// digest, so two runs (any thread count, crashed-and-resumed or not) can
// be compared bit-for-bit by comparing digest sequences.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/thread_pool.h"

namespace edgeslice::bench::city {

inline constexpr std::size_t kNoCrash = static_cast<std::size_t>(-1);

struct CityConfig {
  std::size_t ras = 128;
  std::size_t slices_per_ra = 8;         // slices hosted by every RA
  std::size_t periods = 24;              // orchestration periods per day
  std::size_t intervals_per_period = 6;  // 24 x 6 = 144 ten-minute bins
  /// Per-slice Poisson rate at the diurnal peak. Default puts the busiest
  /// hours just past the SLA floor under TARO (peak periods breach, night
  /// troughs pass), so the violation-rate report tracks the diurnal curve.
  double peak_rate = 3.5;
  std::uint64_t seed = 1;
  /// Non-owning worker pool; null runs the period loop sequentially.
  /// Trajectories are bit-identical at any thread count.
  ThreadPool* pool = nullptr;
  /// Period-cadence checkpointing + resume, following the chaos bench's
  /// contract (bench/ablation_fault_tolerance.cpp): empty/0 disables.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_out;
  std::string resume_path;
  std::size_t checkpoint_keep = 0;
  /// std::abort() immediately before running this period (crash leg).
  std::size_t crash_at_period = kNoCrash;
  /// Stop cleanly after this many periods while still building the FULL
  /// `periods`-long day (arrival profiles span the whole day, so a
  /// partial run stays on the same trajectory as a full one). Used by the
  /// in-process resume test; kNoCrash means run to `periods`.
  std::size_t stop_after_period = kNoCrash;
  /// Monitor period-sum retention window; must exceed the system's
  /// report-staleness cutoff. The monitor's row log is always off here.
  std::size_t sum_retention = 8;
  /// Stream one "digest period=P 0x..." line to stdout as each period
  /// completes (flushed, so a --crash-at-period abort loses nothing).
  /// The crash/resume test diffs these lines across runs.
  bool print_digests = false;
};

/// Everything the bench reports and the smoke tests assert.
struct CityRun {
  std::size_t start_period = 0;  // 0, or the resume point
  std::size_t periods_run = 0;   // periods evaluated in this process
  double wall_seconds = 0.0;     // steady-state period loop only
  double periods_per_second = 0.0;
  /// p99 over per-period coordinator.solve span totals (seconds).
  double p99_solve_seconds = 0.0;
  double total_performance = 0.0;
  std::size_t sla_violations = 0;         // watchdog total over the run
  double sla_violation_rate = 0.0;        // violations / (periods * slices)
  std::vector<double> slice_violation_rates;  // per slice
  /// One FNV-1a digest per period run in this process (performance sums,
  /// system/slice performance, degraded-mode counters).
  std::vector<std::uint64_t> period_digests;
  /// The period digests chained into one run digest.
  std::uint64_t trajectory_digest = 0;
  /// Final period-arena stats, plus the upstream-allocation count once the
  /// loop was warm (captured after the third period): equal counts mean
  /// the steady-state hot path performed zero arena-upstream allocations.
  MonotonicArena::Stats arena;
  std::size_t arena_upstream_after_warmup = 0;
};

/// Build the city system and run the day (or the remainder of it, when
/// resuming). Throws std::invalid_argument on a degenerate shape.
CityRun run_city(const CityConfig& config);

/// Lower-case hex rendering of a digest ("0x" prefixed).
std::string digest_hex(std::uint64_t digest);

}  // namespace edgeslice::bench::city
