// Fig. 6 — Convergence of the coordinated system.
//
// (a) System performance vs time interval for EdgeSlice / EdgeSlice-NT /
//     TARO (paper: EdgeSlice converges within a few periods and ends
//     3.69x better than TARO and 2.74x better than EdgeSlice-NT).
// (b) Per-slice performance vs time interval for EdgeSlice (paper: both
//     slices meet U_min = -50 per period).
#include "common.h"

using namespace edgeslice;
using namespace edgeslice::bench;

int main(int argc, char** argv) {
  Setup setup = parse_common_flags(argc, argv, Setup{});
  Rng rng(setup.seed);

  print_header("Fig. 6(a): system performance vs time interval", "Fig. 6");
  const auto edgeslice = run_contender(setup, Contender::EdgeSlice, rng);
  const auto nt = run_contender(setup, Contender::EdgeSliceNt, rng);
  const auto taro = run_contender(setup, Contender::Taro, rng);

  print_series_header({"interval", "EdgeSlice", "EdgeSlice-NT", "TARO"});
  for (std::size_t t = 0; t < edgeslice.system_series.size(); ++t) {
    print_row({static_cast<double>(t + 1), edgeslice.system_series[t],
               nt.system_series[t], taro.system_series[t]});
  }

  // Converged-tail comparison (last 30% of intervals), as the paper's
  // improvement factors are quoted after convergence.
  const auto tail_mean = [](const std::vector<double>& xs) {
    const std::size_t start = xs.size() * 7 / 10;
    std::vector<double> tail(xs.begin() + static_cast<std::ptrdiff_t>(start), xs.end());
    return mean(tail);
  };
  const double es_tail = tail_mean(edgeslice.system_series);
  const double nt_tail = tail_mean(nt.system_series);
  const double taro_tail = tail_mean(taro.system_series);
  std::printf("\n# converged system performance (tail mean): EdgeSlice=%.1f "
              "EdgeSlice-NT=%.1f TARO=%.1f\n",
              es_tail, nt_tail, taro_tail);
  std::printf("# improvement vs TARO: %.2fx   vs EdgeSlice-NT: %.2fx "
              "(paper: 3.69x, 2.74x)\n",
              taro_tail / es_tail, nt_tail / es_tail);

  std::printf("\n# Fig. 6(b): EdgeSlice per-slice performance vs time interval\n");
  print_series_header({"interval", "slice1", "slice2"});
  for (std::size_t t = 0; t < edgeslice.slice_series[0].size(); ++t) {
    print_row({static_cast<double>(t + 1), edgeslice.slice_series[0][t],
               edgeslice.slice_series[1][t]});
  }
  // SLA check: per-period sums vs U_min = -50.
  const std::size_t T = setup.intervals_per_period;
  std::size_t violations = 0;
  std::size_t periods = edgeslice.slice_series[0].size() / T;
  for (std::size_t i = 0; i < setup.slices; ++i) {
    for (std::size_t p = periods / 2; p < periods; ++p) {  // after convergence
      double period_sum = 0.0;
      for (std::size_t t = 0; t < T; ++t) period_sum += edgeslice.slice_series[i][p * T + t];
      if (period_sum < -50.0) ++violations;
    }
  }
  std::printf("\n# post-convergence SLA (U_min=-50) violations: %zu\n", violations);
  return 0;
}
