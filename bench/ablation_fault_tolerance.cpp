// Chaos ablation — control-plane fault tolerance.
//
// The paper's decentralization claim implies graceful degradation: losing
// RC-M/RC-L messages or a whole RA should dent performance, not stall the
// system. This bench sweeps fault intensity over the prototype setup
// (scripted TARO agents isolate control-plane dynamics from RL noise) and
// reports, per scenario: total system performance relative to the
// fault-free run, SLA satisfaction (fraction of (period, slice) pairs whose
// network-wide performance meets U_min), degraded-mode activity
// (carry-forwards, frozen columns, crashes), and message-plane counters.
// Every scenario is run twice from the same FaultPlan seed and checked
// bit-identical, demonstrating reproducible chaos.
#include "common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>

#include "ckpt/rotation.h"
#include "common/fault.h"
#include "core/policies.h"
#include "ipc/supervisor.h"
#include "obs/sla_watchdog.h"

using namespace edgeslice;
using namespace edgeslice::bench;

namespace {

struct ScenarioResult {
  double total_performance = 0.0;
  double sla_fraction = 0.0;
  std::size_t carried = 0;
  std::size_t frozen = 0;
  std::size_t crashed = 0;
  std::size_t rcl_losses = 0;
  std::size_t sla_violations = 0;  // SLA watchdog's count, cross-checked
  core::MessageBusStats bus;

  bool operator==(const ScenarioResult& other) const {
    return total_performance == other.total_performance &&
           sla_fraction == other.sla_fraction && carried == other.carried &&
           frozen == other.frozen && crashed == other.crashed &&
           rcl_losses == other.rcl_losses && sla_violations == other.sla_violations &&
           bus.rcm_dropped == other.bus.rcm_dropped &&
           bus.rcm_delayed == other.bus.rcm_delayed &&
           bus.rcl_dropped == other.bus.rcl_dropped;
  }
};

constexpr std::size_t kNoCrash = static_cast<std::size_t>(-1);

ScenarioResult run_scenario(const Setup& setup, const FaultPlan& plan,
                            std::size_t periods, std::size_t crash_at = kNoCrash) {
  Rng profile_rng(setup.seed);
  const auto profiles = make_profiles(setup.slices, profile_rng);
  const auto model = make_service_model(profiles);
  const auto config = env_config(setup, true);

  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  std::vector<std::unique_ptr<core::RaPolicy>> policies;
  for (std::size_t j = 0; j < setup.ras; ++j) {
    environments.push_back(std::make_unique<env::RaEnvironment>(
        config, profiles, model, make_perf(setup), Rng(setup.seed * 1000 + j)));
    policies.push_back(std::make_unique<core::TaroPolicy>());
  }

  core::CoordinatorConfig coordinator;
  coordinator.slices = setup.slices;
  coordinator.ras = setup.ras;

  FaultInjector injector{plan};
  // SLA watchdog on the same contract the coordinator enforces (the
  // constructor's -50/slice default when u_min is unset). Observation
  // only: attaching it does not change results.
  obs::SlaWatchdog watchdog = obs::SlaWatchdog::from_u_min(
      coordinator.u_min.empty() ? std::vector<double>(setup.slices, -50.0)
                                : coordinator.u_min);
  core::SystemConfig system_config;
  system_config.faults = &injector;
  system_config.watchdog = &watchdog;

  std::vector<env::RaEnvironment*> env_ptrs;
  std::vector<core::RaPolicy*> policy_ptrs;
  for (auto& e : environments) env_ptrs.push_back(e.get());
  for (auto& p : policies) policy_ptrs.push_back(p.get());

  // --workers: host the RAs in supervised worker processes. The FaultPlan
  // is applied identically (the injector lives in the coordinator
  // process), and its WorkerKill/SocketDrop events become real SIGKILLs /
  // half-closed sockets instead of bookkeeping — same trajectories either
  // way (DESIGN.md "Process model & supervision").
  std::unique_ptr<ipc::WorkerSupervisor> supervisor;
  if (setup.workers > 0) {
    ipc::SupervisorConfig sup_config;
    sup_config.workers = setup.workers;
    supervisor = std::make_unique<ipc::WorkerSupervisor>(env_ptrs, policy_ptrs,
                                                         sup_config);
    supervisor->start();
    system_config.transport = supervisor.get();
  }
  core::EdgeSliceSystem system(env_ptrs, policy_ptrs, coordinator, system_config);

  // --resume: restore the system (loop counters, coordinator, message bus
  // — in-flight envelopes included — and every environment) and continue
  // from the checkpointed period. The FaultPlan re-applies losslessly: the
  // injector is a pure function of (plan seed, period, RA), so the resumed
  // run sees exactly the faults the uninterrupted run would have.
  // With --checkpoint-keep the checkpoint path is a rotation BASE: each
  // boundary publishes "<base>.p<period>" and prunes older siblings, and
  // a resume loads the newest sibling that validates (a torn newest file
  // falls back to the one before it).
  std::size_t start = 0;
  if (!setup.resume_path.empty()) {
    std::optional<std::string> source;
    if (setup.checkpoint_keep > 0) {
      source = ckpt::CheckpointRotation(setup.resume_path, setup.checkpoint_keep)
                   .latest();
    } else if (std::filesystem::exists(setup.resume_path)) {
      source = setup.resume_path;
    }
    if (source.has_value()) {
      system.load_checkpoint(*source);
      start = system.period_count();
      std::fprintf(stderr, "[chaos] resumed from %s at period %zu\n",
                   source->c_str(), start);
    }
  }
  const std::string ckpt_path = !setup.checkpoint_out.empty() ? setup.checkpoint_out
                                                              : setup.resume_path;
  std::optional<ckpt::CheckpointRotation> rotation;
  if (setup.checkpoint_keep > 0 && !ckpt_path.empty()) {
    rotation.emplace(ckpt_path, setup.checkpoint_keep);
  }

  std::vector<core::PeriodResult> results;
  results.reserve(periods - start);
  for (std::size_t p = start; p < periods; ++p) {
    // --crash-at-period: die mid-run so the crash handlers (installed by
    // --events-out) must salvage the flight-recorder window, and — when
    // --checkpoint-every is set — a rerun with --resume picks up from the
    // last period boundary.
    if (p == crash_at) {
      std::fprintf(stderr, "[chaos] forced abort at period %zu\n", p);
      std::abort();
    }
    results.push_back(system.run_period());
    if (setup.checkpoint_every > 0 && !ckpt_path.empty() &&
        (p + 1) % setup.checkpoint_every == 0 && p + 1 < periods) {
      const std::string dest =
          rotation.has_value() ? rotation->path_for(p + 1) : ckpt_path;
      if (!system.save_checkpoint(dest)) {
        std::fprintf(stderr, "[chaos] cannot write checkpoint to %s\n",
                     dest.c_str());
        std::exit(2);
      }
      // Prune only after the new checkpoint is durably published: a crash
      // anywhere in this loop leaves at least one valid file behind.
      if (rotation.has_value()) rotation->prune(p + 1);
    }
  }

  ScenarioResult out;
  const auto& u_min = system.coordinator().config().u_min;
  std::size_t met = 0;
  for (const auto& r : results) {
    out.total_performance += r.system_performance;
    out.carried += r.reports_carried;
    out.frozen += r.columns_frozen;
    out.crashed += r.crashed_ras;
    out.rcl_losses += r.rcl_losses;
    for (std::size_t i = 0; i < setup.slices; ++i) {
      double total = 0.0;
      for (std::size_t j = 0; j < setup.ras; ++j) total += r.performance_sums(i, j);
      if (total >= u_min[i] - 1e-9) ++met;
    }
  }
  // Accounting covers the periods evaluated in THIS process: after a
  // resume, the pre-crash periods belong to the previous process (the
  // watchdog is observation-only state and is deliberately not part of the
  // checkpoint, so its counters also start at the resume point).
  const std::size_t evaluated = periods - start;
  out.sla_fraction =
      static_cast<double>(met) / static_cast<double>(evaluated * setup.slices);
  out.sla_violations = watchdog.total_violations();
  // The watchdog evaluates the same sums with the same tolerance, so its
  // violation count must be the exact complement of `met`.
  if (out.sla_violations + met != evaluated * setup.slices) {
    std::fprintf(stderr, "[chaos] WATCHDOG MISMATCH: %zu violations + %zu met != %zu\n",
                 out.sla_violations, met, evaluated * setup.slices);
    std::exit(2);
  }
  out.bus = system.bus().stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Setup setup = parse_common_flags(argc, argv, Setup{}, {"crash-at-period"});
  const CliArgs args(argc, argv,
                     {"steps", "seed", "periods", "threads", "metrics-out",
                      "telemetry-port", "metrics-interval", "events-out",
                      "checkpoint-every", "checkpoint-out", "resume",
                      "checkpoint-keep", "workers", "crash-at-period"});
  const std::int64_t crash_at = args.get_int("crash-at-period", -1);
  const std::size_t periods = setup.eval_periods * 4;  // longer horizon for rates
  print_header("Ablation: control-plane fault tolerance",
               "degradation under RC-M/RC-L loss and RA crashes");
  std::printf("# %zu slices, %zu RAs, %zu periods, TARO agents, plan seed %llu, "
              "%zu worker processes\n",
              setup.slices, setup.ras, periods,
              static_cast<unsigned long long>(setup.seed), setup.workers);

  struct Scenario {
    std::string name;
    FaultPlan plan;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"fault-free", FaultPlan{}});
  for (double drop : {0.05, 0.10, 0.20, 0.40}) {
    FaultPlan plan;
    plan.seed = setup.seed;
    plan.rates.rcm_drop = drop;
    char name[48];
    std::snprintf(name, sizeof(name), "rcm-drop-%.0f%%", drop * 100.0);
    scenarios.push_back({name, plan});
  }
  {
    FaultPlan plan;
    plan.seed = setup.seed;
    plan.rates.rcl_drop = 0.2;
    scenarios.push_back({"rcl-drop-20%", plan});
  }
  {
    FaultPlan plan;
    plan.seed = setup.seed;
    plan.rates.rcm_delay = 0.3;
    plan.rates.rcm_delay_periods = 2;
    scenarios.push_back({"rcm-delay-30%x2", plan});
  }
  {
    FaultPlan plan;
    plan.seed = setup.seed;
    plan.events.push_back(
        FaultEvent{FaultType::RaCrash, periods / 3, setup.ras - 1, 4, 1.0});
    scenarios.push_back({"ra-crash-midrun", plan});
  }
  {
    FaultPlan plan;
    plan.seed = setup.seed;
    plan.rates.rcm_drop = 0.10;
    plan.events.push_back(
        FaultEvent{FaultType::RaCrash, periods / 3, setup.ras - 1, 4, 1.0});
    scenarios.push_back({"acceptance: 10%drop+crash", plan});
  }
  {
    // Process-real chaos: with --workers these are a real SIGKILL and a
    // real half-closed socket, restored by the supervisor; without
    // workers the plan folds into the same ra_crashed() windows — the
    // row must be byte-identical either way.
    FaultPlan plan;
    plan.seed = setup.seed;
    plan.events.push_back(
        FaultEvent{FaultType::WorkerKill, periods / 2, 0, 3, 1.0});
    plan.events.push_back(FaultEvent{FaultType::SocketDrop, 2 * periods / 3,
                                     setup.ras - 1, 2, 1.0});
    scenarios.push_back({"worker-kill+socket-drop", plan});
  }
  {
    FaultPlan plan;
    plan.seed = setup.seed;
    plan.rates.rcm_drop = 0.15;
    plan.rates.rcl_drop = 0.15;
    plan.rates.ra_crash = 0.03;
    plan.rates.ra_crash_periods = 2;
    plan.rates.cqi_blackout = 0.05;
    plan.rates.link_failure = 0.05;
    plan.rates.compute_slowdown = 0.05;
    plan.rates.compute_slowdown_factor = 3.0;
    scenarios.push_back({"combined-chaos", plan});
  }

  // --crash-at-period N: run only combined-chaos and abort at period N.
  // With --events-out set, the installed crash handlers must produce a
  // complete JSONL flight-recorder dump (the acceptance test's subject).
  // With --checkpoint-every M (periods), checkpoints land at every M-th
  // period boundary, and a rerun with --resume <path> continues the SAME
  // combined-chaos run from the last boundary before the crash — the
  // fault-tolerance story closed end to end.
  if (crash_at >= 0 || !setup.resume_path.empty()) {
    if (crash_at >= 0) {
      std::printf("# crash-at-period %lld under combined-chaos\n",
                  static_cast<long long>(crash_at));
    } else {
      std::printf("# resuming combined-chaos from %s\n", setup.resume_path.c_str());
    }
    const ScenarioResult r =
        run_scenario(setup, scenarios.back().plan, periods,
                     crash_at >= 0 ? static_cast<std::size_t>(crash_at) : kNoCrash);
    // Reached on resume, or when crash_at >= periods.
    print_series_header({"perf-total", "sla-frac", "sla-viol", "carried", "frozen",
                         "crashed", "rcl-lost"});
    print_row({r.total_performance, r.sla_fraction,
               static_cast<double>(r.sla_violations), static_cast<double>(r.carried),
               static_cast<double>(r.frozen), static_cast<double>(r.crashed),
               static_cast<double>(r.rcl_losses)});
    return 0;
  }

  print_series_header({"perf-total", "perf-vs-clean", "sla-frac", "sla-viol", "carried",
                       "frozen", "crashed", "rcl-lost", "reproducible"});
  double clean_performance = 0.0;
  for (const auto& scenario : scenarios) {
    const ScenarioResult first = run_scenario(setup, scenario.plan, periods);
    const ScenarioResult second = run_scenario(setup, scenario.plan, periods);
    const bool reproducible = first == second;
    if (scenario.plan.empty()) clean_performance = first.total_performance;
    const double relative = clean_performance != 0.0
                                ? first.total_performance / clean_performance
                                : 1.0;
    std::printf("# %s\n", scenario.name.c_str());
    print_row({first.total_performance, relative, first.sla_fraction,
               static_cast<double>(first.sla_violations),
               static_cast<double>(first.carried), static_cast<double>(first.frozen),
               static_cast<double>(first.crashed),
               static_cast<double>(first.rcl_losses), reproducible ? 1.0 : 0.0});
    std::printf("#   bus: rcm sent=%llu dropped=%llu delayed=%llu delivered=%llu | "
                "rcl sent=%llu dropped=%llu\n",
                static_cast<unsigned long long>(first.bus.rcm_sent),
                static_cast<unsigned long long>(first.bus.rcm_dropped),
                static_cast<unsigned long long>(first.bus.rcm_delayed),
                static_cast<unsigned long long>(first.bus.rcm_delivered),
                static_cast<unsigned long long>(first.bus.rcl_sent),
                static_cast<unsigned long long>(first.bus.rcl_dropped));
    if (!reproducible) {
      std::printf("#   WARNING: scenario was NOT bit-reproducible\n");
      return 1;
    }
  }
  return 0;
}
