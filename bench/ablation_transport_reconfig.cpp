// Ablation — transport reconfiguration strategy (Sec. V-B).
//
// Quantifies the design point behind the transport manager's parallel
// configuration: the data-plane outage and lost bytes incurred by the
// naive delete-recreate strategy as a function of how often the
// orchestration agent changes allocations, vs the hitless strategy.
#include "common.h"

#include "transport/transport_manager.h"

using namespace edgeslice;
using namespace edgeslice::bench;

int main(int argc, char** argv) {
  parse_common_flags(argc, argv, Setup{});
  print_header("Ablation: transport reconfiguration strategy",
               "the Sec. V-B hitless-reconfiguration design");

  print_series_header({"reconfigs/min", "naive-outage-s", "naive-lost-Mbit",
                       "hitless-outage-s"});
  for (double reconfigs_per_minute : {1.0, 6.0, 12.0, 30.0, 60.0}) {
    const double duration_s = 600.0;  // 10 minutes of operation
    const auto run = [&](transport::ReconfigStrategy strategy) {
      transport::TransportManagerConfig config;
      config.strategy = strategy;
      transport::TransportManager manager(config);
      manager.set_slice_share(0, 0.5);
      double delivered_bits = 0.0;
      const double step_s = 60.0 / reconfigs_per_minute;
      double share = 0.5;
      for (double t = 0.0; t < duration_s; t += step_s) {
        share = share >= 0.75 ? 0.25 : share + 0.05;  // wandering allocation
        manager.set_slice_share(0, share);
        delivered_bits += manager.slice_capacity_bits(0, step_s);
      }
      return std::pair<double, double>{manager.total_outage_seconds(), delivered_bits};
    };
    const auto naive = run(transport::ReconfigStrategy::NaiveDeleteRecreate);
    const auto hitless = run(transport::ReconfigStrategy::ParallelHitless);
    const double lost_mbit = (hitless.second - naive.second) / 1e6;
    print_row({reconfigs_per_minute, naive.first, lost_mbit, hitless.first});
  }
  std::printf("# naive outage grows linearly with reconfiguration rate; the\n"
              "# hitless strategy keeps the dynamic-slicing control loop free.\n");
  return 0;
}
