// Fig. 9 — Scalability of EdgeSlice (trace-driven simulation, Sec. VII-D).
//
// (a) Performance per RA vs the number of RAs in {5, 10, 15, 20}: the
//     paper's shape is that EdgeSlice and EdgeSlice-NT hold a flat per-RA
//     performance while TARO degrades.
// (b) Performance per slice vs the number of slices in {3, 5, 7}: all
//     contenders degrade as resources thin out, with EdgeSlice best.
#include "common.h"

using namespace edgeslice;
using namespace edgeslice::bench;

int main(int argc, char** argv) {
  Setup base = parse_common_flags(argc, argv, simulation_setup());
  ThreadPool pool(base.threads);
  base.pool = base.threads > 1 ? &pool : nullptr;
  Rng rng(base.seed);

  print_header("Fig. 9: scalability", "Fig. 9");
  if (base.workers > 0) {
    // Evaluation runs fork --workers supervised RA processes; training is
    // unaffected (it stays in this process, fanned over --threads). The
    // printed figures are bit-identical at any worker count.
    std::printf("# evaluation in %zu worker processes\n", base.workers);
  }

  // ---- (a): sweep RA count at 5 slices -----------------------------------
  // Agents depend on the slice count only, so one training per contender
  // covers the whole RA sweep. The full/NT pair trains concurrently when
  // --threads > 1 (bit-identical to a sequential run either way).
  const auto agents5 = train_agents_for(
      {{base, rl::Algorithm::Ddpg, true}, {base, rl::Algorithm::Ddpg, false}}, rng,
      base.pool);
  const auto es_agent5 = agents5[0];
  const auto nt_agent5 = agents5[1];

  std::printf("\n# Fig. 9(a): performance per RA vs number of RAs (5 slices)\n");
  print_series_header({"ras", "EdgeSlice", "EdgeSlice-NT", "TARO"});
  for (std::size_t ras : {5u, 10u, 15u, 20u}) {
    Setup setup = base;
    setup.ras = ras;
    const auto es = run_contender(setup, Contender::EdgeSlice, rng, es_agent5);
    const auto nt = run_contender(setup, Contender::EdgeSliceNt, rng, nt_agent5);
    const auto taro = run_contender(setup, Contender::Taro, rng);
    print_row({static_cast<double>(ras), es.per_ra_performance, nt.per_ra_performance,
               taro.per_ra_performance});
  }

  // ---- (b): sweep slice count at 10 RAs -----------------------------------
  std::printf("\n# Fig. 9(b): performance per slice vs number of slices (10 RAs)\n");
  print_series_header({"slices", "EdgeSlice", "EdgeSlice-NT", "TARO"});
  for (std::size_t slices : {3u, 5u, 7u}) {
    Setup setup = base;
    setup.ras = 10;
    setup.slices = slices;
    std::shared_ptr<rl::Agent> es_agent;
    std::shared_ptr<rl::Agent> nt_agent;
    if (slices == 5) {
      es_agent = es_agent5;  // reuse the (a) training
      nt_agent = nt_agent5;
    } else {
      const auto agents = train_agents_for(
          {{setup, rl::Algorithm::Ddpg, true}, {setup, rl::Algorithm::Ddpg, false}},
          rng, base.pool);
      es_agent = agents[0];
      nt_agent = agents[1];
    }
    const auto es = run_contender(setup, Contender::EdgeSlice, rng, es_agent);
    const auto nt = run_contender(setup, Contender::EdgeSliceNt, rng, nt_agent);
    const auto taro = run_contender(setup, Contender::Taro, rng);
    print_row({static_cast<double>(slices), es.per_slice_performance,
               nt.per_slice_performance, taro.per_slice_performance});
  }
  return 0;
}
