#include "city_common.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>

#include "common.h"

#include "ckpt/rotation.h"
#include "common/stats.h"
#include "common/trace_span.h"
#include "core/policies.h"
#include "core/system.h"
#include "env/environment.h"
#include "env/perf.h"
#include "obs/sla_watchdog.h"
#include "trace/diurnal.h"

namespace edgeslice::bench::city {

namespace {

std::uint64_t fnv1a_bytes(const void* data, std::size_t bytes, std::uint64_t hash) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t fnv1a_doubles(const std::vector<double>& xs, std::uint64_t hash) {
  return fnv1a_bytes(xs.data(), xs.size() * sizeof(double), hash);
}

/// Digest of one period's observable outcome. Covers the full coordinator
/// input (performance sums) and the degraded-mode counters, so any
/// divergence in the trajectory — numeric or control-flow — flips it.
std::uint64_t period_digest(const core::PeriodResult& result) {
  std::uint64_t hash = 14695981039346656037ULL;
  hash = fnv1a_doubles(result.performance_sums.data(), hash);
  hash = fnv1a_bytes(&result.system_performance, sizeof(double), hash);
  hash = fnv1a_doubles(result.slice_performance, hash);
  const std::uint64_t counters[] = {
      result.coordinator_converged ? 1u : 0u, result.crashed_ras,
      result.reports_fresh,                   result.reports_carried,
      result.columns_frozen,                  result.rcl_losses};
  hash = fnv1a_bytes(counters, sizeof(counters), hash);
  return hash;
}

/// Per-RA, per-slice diurnal arrival profiles covering the whole day.
/// Each RA is one synthetic city cell (trace::sample_cell_profile);
/// slices are phase-shifted within the cell's curve (spatio-temporal
/// diversity, same idiom as bench::apply_trace_traffic) and normalized so
/// every slice peaks at `peak_rate` tasks/interval.
std::vector<std::vector<double>> cell_day_profiles(const trace::CellProfile& cell,
                                                   std::size_t slices, std::size_t bins,
                                                   double peak_rate) {
  std::vector<std::vector<double>> per_slice(slices, std::vector<double>(bins, 0.0));
  for (std::size_t i = 0; i < slices; ++i) {
    const double shift_hours =
        24.0 * static_cast<double>(i) / (2.0 * static_cast<double>(slices));
    double max_activity = 0.0;
    for (std::size_t t = 0; t < bins; ++t) {
      const double hour = std::fmod(
          24.0 * (static_cast<double>(t) + 0.5) / static_cast<double>(bins) +
              shift_hours,
          24.0);
      per_slice[i][t] = trace::cell_activity(cell, hour);
      max_activity = std::max(max_activity, per_slice[i][t]);
    }
    if (max_activity <= 0.0) max_activity = 1.0;
    for (double& rate : per_slice[i]) rate = rate / max_activity * peak_rate;
  }
  return per_slice;
}

void validate(const CityConfig& config) {
  if (config.ras == 0 || config.slices_per_ra == 0 || config.periods == 0 ||
      config.intervals_per_period == 0) {
    throw std::invalid_argument("run_city: every shape dimension must be positive");
  }
  if (config.peak_rate <= 0.0) {
    throw std::invalid_argument("run_city: peak_rate must be positive");
  }
  // The monitor recycles a (period, ra) sum node only once it has expired;
  // a window at or below the carry-forward staleness cutoff would recycle
  // sums the coordinator may still read.
  if (config.sum_retention != 0 &&
      config.sum_retention <= core::SystemConfig{}.max_report_staleness) {
    throw std::invalid_argument("run_city: sum_retention must exceed the staleness window");
  }
}

}  // namespace

std::string digest_hex(std::uint64_t digest) {
  char buffer[2 + 16 + 1];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(digest));
  return buffer;
}

CityRun run_city(const CityConfig& config) {
  validate(config);

  // --- Build the city -------------------------------------------------------
  Rng profile_rng(config.seed);
  const auto profiles = make_profiles(config.slices_per_ra, profile_rng);
  const auto model = make_service_model(profiles);
  const std::shared_ptr<const env::PerformanceFunction> perf =
      env::make_queue_power_perf(2.0);

  env::RaEnvironmentConfig env_config;
  env_config.slices = config.slices_per_ra;
  env_config.intervals_per_period = config.intervals_per_period;
  env_config.arrival_rate = config.peak_rate;
  env_config.include_traffic_in_state = true;

  const std::size_t bins = config.periods * config.intervals_per_period;
  Rng city_rng(config.seed + 9001);
  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  std::vector<std::unique_ptr<core::RaPolicy>> policies;
  environments.reserve(config.ras);
  policies.reserve(config.ras);
  for (std::size_t j = 0; j < config.ras; ++j) {
    environments.push_back(std::make_unique<env::RaEnvironment>(
        env_config, profiles, model, perf, Rng(config.seed * 1000 + j)));
    const trace::CellProfile cell = trace::sample_cell_profile(city_rng);
    environments.back()->set_arrival_profiles(
        cell_day_profiles(cell, config.slices_per_ra, bins, config.peak_rate));
    policies.push_back(std::make_unique<core::TaroPolicy>());
  }

  core::CoordinatorConfig coordinator;
  coordinator.slices = config.slices_per_ra;
  coordinator.ras = config.ras;
  // The -50/slice default SLA (Sec. VII) is calibrated for the 10-RA,
  // 24-interval simulation. The floor binds the *network-wide* per-slice
  // sum over one period — a quantity that scales with both the RA count
  // and the period length — so the city keeps the implied per-(RA,
  // interval) contract fixed as --ras/--intervals grow. The constant is
  // chosen so peak-hour periods breach under TARO and night-trough
  // periods pass: the violation-rate report separates the diurnal
  // regimes instead of saturating at 0 or 1.
  coordinator.u_min.assign(
      config.slices_per_ra,
      -5.0 * static_cast<double>(config.ras) *
          static_cast<double>(config.intervals_per_period));

  obs::SlaWatchdog watchdog = obs::SlaWatchdog::from_u_min(coordinator.u_min);

  core::SystemConfig system_config;
  system_config.pool = config.pool;
  system_config.watchdog = &watchdog;

  std::vector<env::RaEnvironment*> env_ptrs;
  std::vector<core::RaPolicy*> policy_ptrs;
  for (auto& e : environments) env_ptrs.push_back(e.get());
  for (auto& p : policies) policy_ptrs.push_back(p.get());
  core::EdgeSliceSystem system(env_ptrs, policy_ptrs, coordinator, system_config);

  // At city scale the per-interval row log is the dominant allocator on
  // the period hot path; the RC-M running sums (kept exact) are all the
  // coordinator and watchdog need.
  system.monitor().set_row_recording(false);
  system.monitor().set_period_sum_retention(config.sum_retention);
  global_tracer().set_period_retention(config.periods + 16);

  // --- Resume / checkpoint plumbing (chaos-bench contract) ------------------
  std::size_t start = 0;
  if (!config.resume_path.empty()) {
    std::optional<std::string> source;
    if (config.checkpoint_keep > 0) {
      source =
          ckpt::CheckpointRotation(config.resume_path, config.checkpoint_keep).latest();
    } else if (std::filesystem::exists(config.resume_path)) {
      source = config.resume_path;
    }
    if (source.has_value()) {
      system.load_checkpoint(*source);
      start = system.period_count();
      std::fprintf(stderr, "[city] resumed from %s at period %zu\n", source->c_str(),
                   start);
    }
  }
  const std::string ckpt_path =
      !config.checkpoint_out.empty() ? config.checkpoint_out : config.resume_path;
  std::optional<ckpt::CheckpointRotation> rotation;
  if (config.checkpoint_keep > 0 && !ckpt_path.empty()) {
    rotation.emplace(ckpt_path, config.checkpoint_keep);
  }

  // --- The day --------------------------------------------------------------
  CityRun run;
  run.start_period = start;
  core::PeriodResult result;
  const std::size_t end = std::min(config.periods, config.stop_after_period);
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t p = start; p < end; ++p) {
    if (p == config.crash_at_period) {
      std::fprintf(stderr, "[city] forced abort at period %zu\n", p);
      std::abort();
    }
    system.run_period_into(result);
    run.total_performance += result.system_performance;
    run.period_digests.push_back(period_digest(result));
    if (config.print_digests) {
      std::printf("digest period=%zu %s\n", p,
                  digest_hex(run.period_digests.back()).c_str());
      std::fflush(stdout);
    }
    // The arena is warm once a period has run after reset()'s one-off slab
    // coalescing; any upstream allocation past this point is a regression
    // the smoke test catches.
    if (p == start + 2) {
      run.arena_upstream_after_warmup =
          system.period_arena().stats().upstream_allocations;
    }
    if (config.checkpoint_every > 0 && !ckpt_path.empty() &&
        (p + 1) % config.checkpoint_every == 0 && p + 1 < config.periods) {
      const std::string dest =
          rotation.has_value() ? rotation->path_for(p + 1) : ckpt_path;
      if (!system.save_checkpoint(dest)) {
        std::fprintf(stderr, "[city] cannot write checkpoint to %s\n", dest.c_str());
        std::exit(2);
      }
      // Prune only after the new checkpoint is durably published.
      if (rotation.has_value()) rotation->prune(p + 1);
    }
  }
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  run.periods_run = end - start;
  run.periods_per_second = run.wall_seconds > 0.0
                               ? static_cast<double>(run.periods_run) / run.wall_seconds
                               : 0.0;

  // --- Report ---------------------------------------------------------------
  run.trajectory_digest = fnv1a_bytes(
      run.period_digests.data(), run.period_digests.size() * sizeof(std::uint64_t),
      14695981039346656037ULL);
  run.arena = system.period_arena().stats();
  if (run.arena_upstream_after_warmup == 0) {
    run.arena_upstream_after_warmup = run.arena.upstream_allocations;
  }

  run.slice_violation_rates.resize(config.slices_per_ra, 0.0);
  for (std::size_t i = 0; i < config.slices_per_ra; ++i) {
    run.slice_violation_rates[i] = watchdog.violation_rate(i);
  }
  run.sla_violations = watchdog.total_violations();
  const std::size_t evaluated = watchdog.periods_evaluated() * config.slices_per_ra;
  run.sla_violation_rate =
      evaluated > 0 ? static_cast<double>(run.sla_violations) /
                          static_cast<double>(evaluated)
                    : 0.0;

  // p99 of per-period coordinator-solve time, from the tracer's existing
  // span (nested, so match by path suffix). Only this run's period window
  // counts — the tracer is process-global and tests run several cities.
  std::vector<double> solve_seconds;
  for (const auto& name : global_tracer().names()) {
    const std::string suffix = "coordinator.solve";
    if (name.size() < suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    for (const auto& [period, span_stats] : global_tracer().periods(name)) {
      if (period >= start && period < end) {
        solve_seconds.push_back(span_stats.total_s);
      }
    }
  }
  run.p99_solve_seconds =
      solve_seconds.empty() ? 0.0 : percentile(std::move(solve_seconds), 99.0);
  return run;
}

}  // namespace edgeslice::bench::city
