// Open-loop Poisson load generator for the policy-serving plane.
//
// Drives a policy-serve daemon with Poisson arrivals at a configured
// offered rate — open loop: send times are drawn up front from the
// arrival process and requests are fired on schedule whether or not
// earlier responses have come back, so an overloaded server sees the
// backlog a real request stream would produce (closed-loop generators
// self-throttle and hide saturation). Reports offered vs achieved
// throughput, client-observed decision-latency quantiles (p50/p99/p999),
// and the shed rate into BENCH_serving.json (FORMATS.md "BENCH_serving
// schema"), ledger-compatible with tools/bench_ledger.
//
// Self-contained by default: constructs a deterministic policy network
// from --seed and serves it in-process. Point it at an external daemon
// with --port (and --host), e.g. one started by tools/policy_serve.
#include <poll.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "common/stats.h"
#include "nn/gemm.h"
#include "nn/mlp.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

using namespace edgeslice;

namespace {

/// Every field BENCH_serving.json carries, in emission order. The docs
/// check (tests/docs_check.cmake) pins each name to FORMATS.md, and
/// write_serving_json verifies the emitted document covers exactly this
/// table — a field cannot be added, renamed, or dropped without the docs
/// following.
constexpr const char* kServeBenchFields[] = {
    "state_dim",
    "action_dim",
    "hidden_dim",
    "batch_max",
    "queue_limit",
    "connections",
    "offered_rate",
    "requests",
    "seed",
    "gemm_backend",
    "wall_seconds",
    "sent",
    "decided",
    "shed",
    "rejected",
    "lost",
    "achieved_rate",
    "shed_rate",
    "p50_decision_seconds",
    "p99_decision_seconds",
    "p999_decision_seconds",
    "p50_server_seconds",
    "p99_server_seconds",
};

struct LoadConfig {
  std::size_t state_dim = 8;
  std::size_t action_dim = 3;
  std::size_t hidden_dim = 64;
  std::size_t batch_max = 64;
  std::size_t queue_limit = 256;
  std::size_t connections = 4;
  double offered_rate = 2000.0;  // requests/second, all connections together
  std::size_t requests = 10000;
  std::uint64_t seed = 1;
};

struct LoadResult {
  double wall_seconds = 0.0;
  std::size_t sent = 0;
  std::size_t decided = 0;
  std::size_t shed = 0;
  std::size_t rejected = 0;
  std::size_t lost = 0;
  double achieved_rate = 0.0;
  double shed_rate = 0.0;
  double p50 = 0.0, p99 = 0.0, p999 = 0.0;
  double server_p50 = 0.0, server_p99 = 0.0;
};

std::string json_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Write the report, field order and names exactly per kServeBenchFields.
bool write_serving_json(const std::string& path, const LoadConfig& config,
                        const LoadResult& result) {
  std::vector<std::pair<std::string, std::string>> fields;
  const auto count = [](std::size_t v) {
    return json_number(static_cast<double>(v));
  };
  fields.emplace_back("state_dim", count(config.state_dim));
  fields.emplace_back("action_dim", count(config.action_dim));
  fields.emplace_back("hidden_dim", count(config.hidden_dim));
  fields.emplace_back("batch_max", count(config.batch_max));
  fields.emplace_back("queue_limit", count(config.queue_limit));
  fields.emplace_back("connections", count(config.connections));
  fields.emplace_back("offered_rate", json_number(config.offered_rate));
  fields.emplace_back("requests", count(config.requests));
  fields.emplace_back("seed", count(static_cast<std::size_t>(config.seed)));
  fields.emplace_back("gemm_backend",
                      std::string("\"") +
                          nn::gemm_backend_name(nn::active_gemm_backend()) + "\"");
  fields.emplace_back("wall_seconds", json_number(result.wall_seconds));
  fields.emplace_back("sent", count(result.sent));
  fields.emplace_back("decided", count(result.decided));
  fields.emplace_back("shed", count(result.shed));
  fields.emplace_back("rejected", count(result.rejected));
  fields.emplace_back("lost", count(result.lost));
  fields.emplace_back("achieved_rate", json_number(result.achieved_rate));
  fields.emplace_back("shed_rate", json_number(result.shed_rate));
  fields.emplace_back("p50_decision_seconds", json_number(result.p50));
  fields.emplace_back("p99_decision_seconds", json_number(result.p99));
  fields.emplace_back("p999_decision_seconds", json_number(result.p999));
  fields.emplace_back("p50_server_seconds", json_number(result.server_p50));
  fields.emplace_back("p99_server_seconds", json_number(result.server_p99));

  constexpr std::size_t kFieldCount =
      sizeof(kServeBenchFields) / sizeof(kServeBenchFields[0]);
  if (fields.size() != kFieldCount) {
    std::fprintf(stderr, "[serve_load] field table out of sync with emission\n");
    return false;
  }
  for (std::size_t i = 0; i < kFieldCount; ++i) {
    if (fields[i].first != kServeBenchFields[i]) {
      std::fprintf(stderr, "[serve_load] field %zu is \"%s\", table says \"%s\"\n",
                   i, fields[i].first.c_str(), kServeBenchFields[i]);
      return false;
    }
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) {
      std::fprintf(stderr, "[serve_load] cannot write %s\n", tmp.c_str());
      return false;
    }
    out << "{\n";
    for (std::size_t i = 0; i < fields.size(); ++i) {
      out << "  \"" << fields[i].first << "\": " << fields[i].second;
      out << (i + 1 < fields.size() ? ",\n" : "\n");
    }
    out << "}\n";
  }
  std::remove(path.c_str());
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

LoadResult run_load(const std::string& host, std::uint16_t port,
                    const LoadConfig& config, int drain_timeout_ms) {
  // Draw the whole arrival schedule up front (open loop: the schedule is
  // a property of the offered load, not of the server's behaviour), and
  // pre-generate observations so generation cost never gates send times.
  Rng rng(config.seed);
  std::vector<double> send_at(config.requests);
  double t = 0.0;
  for (double& at : send_at) {
    t += rng.exponential(config.offered_rate);
    at = t;
  }
  std::vector<std::vector<double>> observations(config.requests);
  for (auto& observation : observations) {
    observation = rng.uniforms(config.state_dim);
  }

  std::vector<serve::ServeClient> clients;
  clients.reserve(config.connections);
  for (std::size_t i = 0; i < config.connections; ++i) {
    clients.push_back(serve::ServeClient::connect(host, port));
  }

  LoadResult result;
  std::unordered_map<std::uint64_t, double> sent_at;
  sent_at.reserve(config.requests);
  std::vector<double> latencies;
  latencies.reserve(config.requests);

  const auto start = std::chrono::steady_clock::now();
  std::size_t next = 0;
  std::size_t answered = 0;
  double drain_deadline = -1.0;

  const auto drain_ready = [&](int wait_ms) {
    std::vector<pollfd> pfds;
    pfds.reserve(clients.size());
    for (const serve::ServeClient& client : clients)
      pfds.push_back({client.fd(), POLLIN, 0});
    if (::poll(pfds.data(), pfds.size(), wait_ms) <= 0) return;
    const double now = elapsed_seconds(start);
    for (std::size_t i = 0; i < clients.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      for (const serve::DecideResponsePayload& response :
           clients[i].poll_decisions(0)) {
        ++answered;
        const auto it = sent_at.find(response.request_id);
        const double latency = it == sent_at.end() ? 0.0 : now - it->second;
        switch (response.status) {
          case serve::kDecideOk:
            ++result.decided;
            latencies.push_back(latency);
            break;
          case serve::kDecideShed:
            ++result.shed;
            break;
          default:
            ++result.rejected;
            break;
        }
      }
    }
  };

  while (answered < result.sent || next < config.requests) {
    const double now = elapsed_seconds(start);
    if (next < config.requests && now >= send_at[next]) {
      serve::ServeClient& client = clients[next % clients.size()];
      client.send_decide(next, observations[next]);
      sent_at.emplace(next, elapsed_seconds(start));
      ++result.sent;
      ++next;
      continue;
    }
    if (next >= config.requests) {
      // Everything is in flight: give stragglers a bounded drain window,
      // then count the remainder as lost rather than hanging the bench.
      if (drain_deadline < 0.0) drain_deadline = now + drain_timeout_ms / 1000.0;
      if (now >= drain_deadline) break;
      drain_ready(20);
      continue;
    }
    const double until_send = send_at[next] - now;
    drain_ready(until_send > 0.001 ? static_cast<int>(until_send * 1000) : 0);
  }

  result.wall_seconds = elapsed_seconds(start);
  result.lost = result.sent - answered;
  result.achieved_rate =
      result.wall_seconds > 0.0 ? result.decided / result.wall_seconds : 0.0;
  result.shed_rate =
      result.sent > 0 ? static_cast<double>(result.shed) / result.sent : 0.0;
  if (!latencies.empty()) {
    result.p50 = percentile(latencies, 50.0);
    result.p99 = percentile(latencies, 99.0);
    result.p999 = percentile(latencies, 99.9);
  }
  const serve::ServeStatusPayload status = clients.front().status();
  result.server_p50 = status.p50_decision_seconds;
  result.server_p99 = status.p99_decision_seconds;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"host", "port", "state-dim", "action-dim", "hidden",
                      "batch-max", "queue-limit", "connections", "rate",
                      "requests", "seed", "gemm", "out", "drain-timeout-ms"});
  if (args.has("gemm")) nn::set_gemm_backend(args.get("gemm", "auto").c_str());

  LoadConfig config;
  config.state_dim = static_cast<std::size_t>(
      args.get_int("state-dim", static_cast<std::int64_t>(config.state_dim)));
  config.action_dim = static_cast<std::size_t>(
      args.get_int("action-dim", static_cast<std::int64_t>(config.action_dim)));
  config.hidden_dim = static_cast<std::size_t>(
      args.get_int("hidden", static_cast<std::int64_t>(config.hidden_dim)));
  config.batch_max = static_cast<std::size_t>(
      args.get_int("batch-max", static_cast<std::int64_t>(config.batch_max)));
  config.queue_limit = static_cast<std::size_t>(
      args.get_int("queue-limit", static_cast<std::int64_t>(config.queue_limit)));
  config.connections = static_cast<std::size_t>(
      args.get_int("connections", static_cast<std::int64_t>(config.connections)));
  config.offered_rate = args.get_double("rate", config.offered_rate);
  config.requests = static_cast<std::size_t>(
      args.get_int("requests", static_cast<std::int64_t>(config.requests)));
  config.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(config.seed)));
  const std::string out_path = args.get("out", "BENCH_serving.json");
  const int drain_timeout_ms =
      static_cast<int>(args.get_int("drain-timeout-ms", 5000));

  std::string host = args.get("host", "127.0.0.1");
  std::uint16_t port = static_cast<std::uint16_t>(args.get_int("port", 0));

  // No --port: serve a deterministic policy in-process (the self-contained
  // mode the serving regression numbers come from).
  std::unique_ptr<serve::PolicyServer> server;
  if (!args.has("port")) {
    Rng policy_rng(config.seed);
    nn::Mlp policy({config.state_dim, config.hidden_dim, config.hidden_dim,
                    config.action_dim},
                   nn::Activation::LeakyRelu, nn::Activation::Sigmoid, policy_rng);
    serve::PolicyServerConfig server_config;
    server_config.batch_max = config.batch_max;
    server_config.queue_limit = config.queue_limit;
    server_config.poll_ms = 1;
    server = std::make_unique<serve::PolicyServer>(std::move(policy), server_config);
    if (!server->start()) {
      std::fprintf(stderr, "[serve_load] cannot start in-process server\n");
      return 1;
    }
    host = "127.0.0.1";
    port = server->port();
  }

  std::printf("# Policy-serving load: open-loop Poisson at %.0f req/s, "
              "%zu requests over %zu connections -> %s:%u (gemm %s)\n",
              config.offered_rate, config.requests, config.connections,
              host.c_str(), port,
              nn::gemm_backend_name(nn::active_gemm_backend()));

  LoadResult result;
  try {
    result = run_load(host, port, config, drain_timeout_ms);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "[serve_load] %s\n", error.what());
    return 1;
  }

  std::printf("# %-14s %-14s %-10s %-12s %-12s %-12s\n", "offered-req/s",
              "achieved-req/s", "shed-rate", "p50-ms", "p99-ms", "p999-ms");
  std::printf("# %-14.1f %-14.1f %-10.4f %-12.3f %-12.3f %-12.3f\n",
              config.offered_rate, result.achieved_rate, result.shed_rate,
              result.p50 * 1e3, result.p99 * 1e3, result.p999 * 1e3);
  std::printf("# sent %zu, decided %zu, shed %zu, rejected %zu, lost %zu "
              "in %.3f s\n",
              result.sent, result.decided, result.shed, result.rejected,
              result.lost, result.wall_seconds);

  if (server) server->stop();
  if (!write_serving_json(out_path, config, result)) return 2;
  std::printf("# wrote %s\n", out_path.c_str());
  return 0;
}
